//! `graphlab-lint` — a dependency-free static-analysis pass that enforces
//! the protocol/determinism invariants the GraphLab engines bet on.
//!
//! The repo's headline guarantees — bit-identical SimNet/TcpNet fixpoints,
//! byte-identical fault-trace replay, serializable lock protocols — rest on
//! hand-maintained invariants that the compiler cannot see. This pass makes
//! them mechanically checkable and fails CI on violations:
//!
//! 1. **`kind-registry`** — every `pub const K_*: u16` across all crates is
//!    globally unique, lives in its crate's reserved range (declared by a
//!    `// lint: kind-map <crate> = <lo>..=<hi> [gaps ..]` comment — the
//!    registry map in `core/src/messages.rs` is the ground truth), avoids
//!    retired gap values, and is referenced by at least one non-defining
//!    site (dead kinds are flagged).
//! 2. **`determinism`** — no hash-order iteration (`.iter()`, `.keys()`,
//!    `.values()`, `.drain()`, `for .. in &map`, ...), `Instant::now` /
//!    `SystemTime::now`, or RNG construction in protocol-critical modules:
//!    `core/src/{messages,chromatic,locking,driver,local,snapshot,recovery}.rs`
//!    and `net/src/*`. Anything that orders sends, builds payloads, or
//!    feeds traces must be deterministic given the seed.
//! 3. **`codec-xref`** — every `impl Codec` in `core/src/messages.rs`
//!    appears in the `wire_codec` proptest suite in `tests/properties.rs`.
//! 4. **`blocking-recv`** — no untimed `.recv()` in engine/transport code
//!    outside the sites PR 5's termination audit blessed; engine loops use
//!    `recv_timeout` so recovery can interrupt waits.
//! 5. **`unsafe-hygiene`** — every `unsafe` carries a `SAFETY:` comment.
//!
//! Four further checks are protocol-*flow* analyses, built on a
//! lightweight item-structure layer ([`parser`]: fn/match-arm spans, call
//! sites — no full Rust grammar):
//!
//! 6. **`msg-flow`** — per-kind send/handler cross-reference. Next to the
//!    kind registry, each kind declares where it is received:
//!
//!    ```text
//!    // lint: kind K_ROLLBACK handlers: chromatic.rs, locking.rs
//!    ```
//!
//!    Every registered kind must carry such a declaration; every declared
//!    handler file must contain a live handler site for the kind (a
//!    match-arm pattern, guard, or `==`/`!=` kind comparison); and every
//!    kind must have at least one non-test send site (a
//!    send/broadcast/`put`/`put_wire` call carrying it, or a `kind: K_X`
//!    struct-literal field). Deleting a handler arm turns CI red.
//! 7. **`era-fencing`** — any non-test code that decodes an era-carrying
//!    recovery/adoption message (`RollbackMsg`, `AdoptPlanMsg`, `DownMsg`,
//!    ...) must compare its era against the current fault era — or call a
//!    `RecoveryTracker` fence (`observe_era`, `note_ready`, ...) — before
//!    acting, either in the surrounding arm/fn body or one delegation hop
//!    away in a same-file fn that receives the decoded value.
//! 8. **`survivor-barrier`** — in `core/src/{chromatic,locking,recovery}.rs`,
//!    barrier/quorum comparisons must count `survivors()`/live membership,
//!    never the static `num_machines()` (directly or via a `let n =`
//!    alias). Ranges and arithmetic uses of `n` are fine.
//! 9. **`fenced-send`** — engine/transport code never calls
//!    `Endpoint::send` directly; the Batcher's `put`/`put_wire` path owns
//!    the fenced-mask that keeps dead destinations dark.
//!
//! Legitimate sites are annotated in place:
//!
//! ```text
//! let t0 = Instant::now(); // lint: allow(determinism) -- wall-clock metrics only
//! ```
//!
//! A suppression must carry a written reason after `--`, must name a known
//! check, and must actually suppress something — violations of any of
//! these are findings themselves (check `lint-allow`), so the allowlist
//! can never rot silently.
//!
//! The pass is a hand-rolled lexer/scanner over the workspace `.rs` files
//! (same no-deps idiom as `net/src/compress.rs`): no syn, no rustc — it
//! runs before anything else builds.

pub mod checks;
pub mod lexer;
pub mod parser;
pub mod source;

pub use source::{SourceFile, Workspace};

/// The nine enforced checks (suppressible); the `lint-allow` meta-check
/// guards the suppressions themselves and is always on.
pub const CHECKS: &[&str] = &[
    "kind-registry",
    "determinism",
    "codec-xref",
    "blocking-recv",
    "unsafe-hygiene",
    "msg-flow",
    "era-fencing",
    "survivor-barrier",
    "fenced-send",
];

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Check that produced it (one of [`CHECKS`] or `lint-allow`).
    pub check: &'static str,
    /// Path relative to the analysis root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(fm, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.check, self.message)
    }
}

/// Runs `active` checks over the workspace, applies suppressions, audits
/// the suppressions themselves, and returns findings sorted by
/// `(path, line, col, check)`.
pub fn run_checks(ws: &Workspace, active: &[&str]) -> Vec<Finding> {
    let mut raw: Vec<Finding> = Vec::new();
    for &check in active {
        match check {
            "kind-registry" => checks::check_kind_registry(ws, &mut raw),
            "determinism" => checks::check_determinism(ws, &mut raw),
            "codec-xref" => checks::check_codec_xref(ws, &mut raw),
            "blocking-recv" => checks::check_blocking_recv(ws, &mut raw),
            "unsafe-hygiene" => checks::check_unsafe_hygiene(ws, &mut raw),
            "msg-flow" => checks::check_msg_flow(ws, &mut raw),
            "era-fencing" => checks::check_era_fencing(ws, &mut raw),
            "survivor-barrier" => checks::check_survivor_barrier(ws, &mut raw),
            "fenced-send" => checks::check_fenced_send(ws, &mut raw),
            other => panic!("unknown check {other:?}"),
        }
    }

    // Apply suppressions: a finding is dropped when the same file carries
    // `lint: allow(<check>)` targeting the finding's line.
    let mut used: Vec<Vec<bool>> =
        ws.files.iter().map(|f| vec![false; f.suppressions.len()]).collect();
    let mut out: Vec<Finding> = Vec::new();
    for finding in raw {
        let fi = ws.files.iter().position(|f| f.path == finding.path);
        let mut suppressed = false;
        if let Some(fi) = fi {
            for (si, s) in ws.files[fi].suppressions.iter().enumerate() {
                if s.check == finding.check && s.target_line == finding.line {
                    used[fi][si] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            out.push(finding);
        }
    }

    // Meta-audit of the suppression layer itself.
    for (fi, f) in ws.files.iter().enumerate() {
        for b in &f.bad_directives {
            out.push(Finding {
                check: "lint-allow",
                path: f.path.clone(),
                line: b.line,
                col: 1,
                message: format!("malformed lint directive: {}", b.message),
            });
        }
        for (si, s) in f.suppressions.iter().enumerate() {
            if !CHECKS.contains(&s.check.as_str()) {
                out.push(Finding {
                    check: "lint-allow",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "allow({}) names an unknown check (known: {})",
                        s.check,
                        CHECKS.join(", ")
                    ),
                });
                continue;
            }
            if s.reason.is_none() {
                out.push(Finding {
                    check: "lint-allow",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "allow({}) without a reason — write `-- <why this site is sound>`",
                        s.check
                    ),
                });
            }
            // Only judge "unused" for checks that actually ran.
            if active.contains(&s.check.as_str()) && !used[fi][si] {
                out.push(Finding {
                    check: "lint-allow",
                    path: f.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "unused suppression: allow({}) matched no finding on its target \
                         line {} — remove it",
                        s.check, s.target_line
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.check).cmp(&(b.path.as_str(), b.line, b.col, b.check))
    });
    out
}

/// Convenience: run every check.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    run_checks(ws, CHECKS)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &std::path::Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
