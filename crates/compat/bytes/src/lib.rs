//! Offline, API-compatible subset of the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (a reference-
//! counted `[u8]` plus a view window); [`BytesMut`] is a growable buffer
//! that [`BytesMut::freeze`]s into one. The [`Buf`]/[`BufMut`] traits
//! carry the little-endian cursor read/write methods the codecs use.
//! Vendored because the build environment cannot reach crates.io.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

macro_rules! fmt_bytes_debug {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "b\"")?;
            for &b in self.as_ref().iter() {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
            }
            write!(f, "\"")
        }
    };
}

/// Immutable, cheaply-cloneable byte buffer. Reading through [`Buf`]
/// advances a cursor without copying the backing storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fmt_bytes_debug!();
}

/// Growable byte buffer; writing goes through [`BufMut`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fmt_bytes_debug!();
}

macro_rules! buf_get {
    ($($fn_name:ident -> $t:ty),* $(,)?) => {$(
        fn $fn_name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let chunk = self.chunk();
            assert!(chunk.len() >= N, concat!(stringify!($fn_name), ": buffer underflow"));
            let v = <$t>::from_le_bytes(chunk[..N].try_into().unwrap());
            self.advance(N);
            v
        }
    )*};
}

/// Cursor-style reads from the front of a buffer (little-endian).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let chunk = self.chunk();
        assert!(!chunk.is_empty(), "get_u8: buffer underflow");
        let v = chunk[0];
        self.advance(1);
        v
    }

    buf_get! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }

    /// Consumes `len` bytes and returns them as a `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes: buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy: share the backing allocation.
        assert!(len <= self.len(), "copy_to_bytes: buffer underflow");
        self.split_to(len)
    }
}

macro_rules! buf_put {
    ($($fn_name:ident($t:ty)),* $(,)?) => {$(
        fn $fn_name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Appending writes to the back of a buffer (little-endian).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_f64_le(-2.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.copy_to_bytes(3).as_slice(), b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(head.as_slice(), &[0, 1]);
        assert_eq!(m.as_slice(), &[2, 3, 4, 5]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from_static(b"abcdef");
        b.advance(4);
        assert_eq!(b.as_slice(), b"ef");
        assert_eq!(b.slice(..1).as_slice(), b"e");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn short_read_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        let _ = b.get_u32_le();
    }
}
