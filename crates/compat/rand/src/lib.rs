//! Offline, API-compatible subset of the `rand` crate (0.9-style names).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `random`, `random_range` and `random_bool`. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic across platforms,
//! which is all the workload generators require (they promise identical
//! graphs for identical seeds, not cryptographic quality).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type,
    /// `bool` fair coin).
    fn random<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard distribution over `T`; backs [`Rng::random`].
pub trait StandardDist {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // `start + f·span` can round up to exactly `end`; keep the
        // half-open contract.
        if v >= self.end { self.end.next_down() } else { v }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f32::sample(rng) * (self.end - self.start);
        if v >= self.end { self.end.next_down() } else { v }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (which is
    /// version-unstable anyway) — only determinism per seed is promised.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
