//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! keeps `benches/` compiling and runnable: each `bench_function` runs a
//! short timing loop and prints a single mean-per-iteration line instead
//! of criterion's full statistical analysis. Swap the workspace
//! dependency back to the real `criterion` when a registry is available —
//! no source changes needed in the benches.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; only a compile-time hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        // Warm-up pass (not measured).
        f(&mut b);
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let start = Instant::now();
        let mut samples = 0usize;
        while samples < self.sample_size && start.elapsed() < self.measurement_time {
            f(&mut b);
            samples += 1;
        }
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!("{id:<44} {per_iter:>12.2?}/iter ({} iters, {samples} samples)", b.iters);
        self
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// `criterion_group!` — both the simple list form and the
/// `name/config/targets` struct form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// `criterion_main!` — emits `main`, ignoring harness CLI flags
/// (`--bench`, filters) that cargo passes to `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = 0u64;
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .bench_function("smoke/iter", |b| b.iter(|| ran += 1));
        assert!(ran >= 2, "warm-up + at least one sample");
    }

    #[test]
    fn iter_batched_threads_setup_through() {
        let mut seen = Vec::new();
        Criterion::default().sample_size(2).bench_function("smoke/batched", |b| {
            b.iter_batched(|| 41, |x| seen.push(x + 1), BatchSize::SmallInput)
        });
        assert!(seen.iter().all(|&v| v == 42));
    }
}
