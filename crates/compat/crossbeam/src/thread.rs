//! Scoped threads in the `crossbeam::scope(|s| { s.spawn(move |_| …) })`
//! shape, implemented over `std::thread::scope`. The spawn closure
//! receives a `&Scope` (almost always ignored as `|_|`), and `scope`
//! returns `thread::Result` like crossbeam's.

pub use std::thread::ScopedJoinHandle;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn spawn_join_and_borrow() {
        let total = AtomicU64::new(0);
        let data = [1u64, 2, 3, 4];
        let out = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                        chunk.len()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 4);
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }
}
