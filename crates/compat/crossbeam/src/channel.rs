//! Cloneable unbounded MPMC channel matching the `crossbeam-channel` API
//! surface the workspace uses: `unbounded`, `Sender::send`,
//! `Receiver::{recv, recv_timeout, try_recv}`, clone-on-both-ends, and
//! disconnection once the opposite side is fully dropped.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        self.shared.queue.lock().unwrap().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.disconnected() {
                return Err(RecvError);
            }
            queue = self.shared.ready.wait(queue).unwrap();
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, timed_out) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
            if timed_out.timed_out() && queue.is_empty() {
                if self.shared.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            return Ok(v);
        }
        if self.shared.disconnected() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.queue.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drained_messages_survive_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
