//! Offline, API-compatible subset of the `crossbeam` crate:
//!
//! - [`channel`]: cloneable unbounded MPMC channels with
//!   `recv_timeout`/`try_recv` and disconnect detection, backed by a
//!   `Mutex<VecDeque>` + `Condvar`;
//! - [`scope`]: scoped threads in the `crossbeam::scope(|s| …)` shape,
//!   backed by `std::thread::scope`.
//!
//! Vendored because the build environment cannot reach crates.io.

pub mod channel;
pub mod thread;

pub use thread::{scope, Scope, ScopedJoinHandle};
