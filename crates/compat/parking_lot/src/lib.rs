//! Offline, API-compatible subset of `parking_lot`: [`Mutex`] and
//! [`RwLock`] whose `lock`/`read`/`write` return guards directly instead
//! of `Result`s. Backed by the std primitives; poisoning is swallowed by
//! recovering the inner guard, matching `parking_lot`'s
//! no-poisoning semantics.

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
