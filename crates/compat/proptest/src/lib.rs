//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`]
//! with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`Just`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **no shrinking** — a failing case reports the case number and seed,
//!   not a minimised input;
//! - generation is driven by the vendored deterministic `rand` shim, so
//!   every run explores the same cases (the per-test seed is derived from
//!   the test's name).

use std::ops::Range;

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// `vec(element, len_range)` — a `Vec` whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a over the test path — a stable per-test seed.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fresh deterministic RNG for case `case` of test `test_name`.
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name) ^ ((case as u64) << 32 | 0x9E37))
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
    pub use crate::collection;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest! { … }` test-suite macro: each `#[test] fn name(arg in
/// strategy, …) { body }` becomes a libtest `#[test]` that runs `body`
/// for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)), __case);
                $crate::__proptest_bind! { __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 1usize..50, x in -2.0f64..2.0) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_respects_len_range(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10), "elements in range: {:?}", v);
        }

        #[test]
        fn flat_map_threads_outer_value(v in (2usize..8).prop_flat_map(|n| collection::vec(0usize..n, 1..4).prop_map(move |xs| (n, xs)))) {
            let (n, xs) = v;
            prop_assert!(xs.iter().all(|&x| x < n));
        }

        #[test]
        fn trailing_comma_and_tuples(
            t in (0u32..5, -1.0f64..1.0, 0usize..3),
        ) {
            prop_assert!(t.0 < 5 && t.2 < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..6);
        let a = s.generate(&mut crate::rng_for("t", 0));
        let b = s.generate(&mut crate::rng_for("t", 0));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::rng_for("t", 1));
        assert_ne!(a, c);
    }
}
