//! Lease-based failure detection (ROADMAP item 2, the glimpser-rs
//! distributed-locking shape: lease expiry, instance ids, idempotent
//! takeover).
//!
//! Every machine holds an implicit *lease* with the coordination master
//! (machine 0): any envelope it puts on the wire towards the master
//! refreshes the lease, and when a machine has been idle towards the
//! master for more than half the lease period it sends an explicit
//! [`K_LEASE`] heartbeat. The master scans its lease table whenever it
//! waits on the network; a machine whose lease has expired is declared
//! dead **once** (the declaration is fenced by the recovery era, so a
//! duplicate declaration — e.g. the SimNet oracle racing the detector —
//! is idempotent), and the master broadcasts the same `K_DOWN` payload
//! the fault fabric uses, so every engine's existing death handling
//! fires unchanged.
//!
//! This is what makes recovery transport-independent: on [`crate::SimNet`]
//! the fabric's oracle notification becomes a test-only ground truth the
//! chaos suite checks the detector *against*, and on [`crate::tcp::TcpNet`]
//! — where a crashed peer otherwise only ever surfaces as reconnect
//! timeouts — lease expiry is the *only* detector.
//!
//! Timing here is wall-clock by nature (a lease is a promise about real
//! time); none of it ever influences wire payload *contents*, only
//! whether a `K_DOWN` is synthesized.

use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::codec::{get_uvarint, put_uvarint, Codec};

/// Reserved kind for explicit lease heartbeats (worker → master, sent
/// only when idle past half the lease period). Swallowed by the
/// [`crate::Batcher`]; engines never see it.
pub const K_LEASE: u16 = u16::MAX - 4;

/// The machine that owns the lease table and declares deaths. Machine 0
/// is the coordination/recovery master throughout the engines and may
/// not die (ROADMAP invariant), so it is also the failure detector.
pub const LEASE_MASTER: usize = 0;

/// Lease policy: one knob, the lease period. Heartbeats go out at half
/// the period; the master's expiry scan runs at least every
/// [`LeaseConfig::slice`] while it waits on the network, bounding
/// detection latency to roughly `period + slice`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How long a machine may stay silent (towards the master) before it
    /// is declared dead.
    pub period: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { period: Duration::from_secs(1) }
    }
}

impl LeaseConfig {
    /// A lease with the given period.
    pub fn with_period(period: Duration) -> Self {
        LeaseConfig { period }
    }

    /// How long a machine may go without sending to the master before an
    /// explicit heartbeat is due.
    pub fn heartbeat_every(&self) -> Duration {
        self.period / 2
    }

    /// The pacing of lease bookkeeping while blocked in a receive: waits
    /// are sliced to this so heartbeats go out and expiry is noticed even
    /// mid-block.
    pub fn slice(&self) -> Duration {
        (self.period / 8).max(Duration::from_millis(1))
    }
}

/// The explicit heartbeat payload. `incarnation` and `era` fence stale
/// heartbeats the same way the fault fabric fences stale traffic: a
/// machine the master has already declared dead can never refresh its
/// lease again (idempotent takeover — adoption of its atoms proceeds
/// even if a delayed heartbeat surfaces later).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaseMsg {
    /// The heartbeating machine.
    pub machine: u16,
    /// The sender's incarnation (0 until a restart machinery sets it).
    pub incarnation: u32,
    /// The highest recovery era the sender has observed.
    pub era: u32,
}

impl Codec for LeaseMsg {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.machine as u64);
        put_uvarint(buf, self.incarnation as u64);
        put_uvarint(buf, self.era as u64);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(LeaseMsg {
            machine: get_uvarint(buf)? as u16,
            incarnation: get_uvarint(buf)? as u32,
            era: get_uvarint(buf)? as u32,
        })
    }
}

/// Wall-clock read for lease bookkeeping, kept in one place.
fn now() -> Instant {
    // lint: allow(determinism) -- leases are promises about real time; timestamps never enter wire payloads
    Instant::now()
}

/// One machine's lease bookkeeping. Workers track only when they last
/// talked to the master; the master additionally tracks when it last
/// heard from each machine and which machines it has declared dead.
pub struct LeaseState {
    me: u16,
    cfg: LeaseConfig,
    era: u32,
    /// Master side: last time each machine's lease was refreshed.
    last_seen: Vec<Instant>,
    /// Machines known dead (declared by expiry here, or observed via a
    /// `K_DOWN` from any source). Dead machines can never refresh.
    dead: Vec<bool>,
    /// Worker side: last time anything went out towards the master.
    last_beat: Instant,
}

impl LeaseState {
    /// Fresh lease state for machine `me` of `n`; every lease starts
    /// refreshed (the cluster is alive at ingress).
    pub fn new(me: u16, n: usize, cfg: LeaseConfig) -> Self {
        let t = now();
        LeaseState { me, cfg, era: 0, last_seen: vec![t; n], dead: vec![false; n], last_beat: t }
    }

    /// The configured policy.
    pub fn config(&self) -> LeaseConfig {
        self.cfg
    }

    /// Whether this machine owns the lease table.
    pub fn is_master(&self) -> bool {
        self.me as usize == LEASE_MASTER
    }

    /// The highest recovery era observed so far.
    pub fn era(&self) -> u32 {
        self.era
    }

    /// Whether `machine` has been declared or observed dead.
    pub fn is_dead(&self, machine: usize) -> bool {
        self.dead[machine]
    }

    /// Any envelope from `src` proves it alive *now* — the piggybacked
    /// refresh. Machines already declared dead are fenced out: a delayed
    /// heartbeat cannot resurrect them.
    pub fn refresh(&mut self, src: usize) {
        if !self.dead[src] {
            self.last_seen[src] = now();
        }
    }

    /// An engine observed a death (from any detector). Idempotent; keeps
    /// the era monotone so a later expiry declaration is fenced above it.
    pub fn observe_death(&mut self, machine: usize, era: u32) {
        self.dead[machine] = true;
        self.era = self.era.max(era);
    }

    /// An engine observed a restart: the machine leases afresh.
    pub fn observe_up(&mut self, machine: usize, era: u32) {
        self.dead[machine] = false;
        self.last_seen[machine] = now();
        self.era = self.era.max(era);
    }

    /// Worker side: whether an explicit heartbeat to the master is due
    /// (idle towards the master past half the lease period).
    pub fn heartbeat_due(&self) -> bool {
        !self.is_master() && self.last_beat.elapsed() >= self.cfg.heartbeat_every()
    }

    /// Worker side: something went out towards the master (piggybacked
    /// refresh) or an explicit heartbeat was just sent.
    pub fn note_sent_to_master(&mut self) {
        self.last_beat = now();
    }

    /// The heartbeat payload this machine would send.
    pub fn heartbeat(&self) -> LeaseMsg {
        LeaseMsg { machine: self.me, incarnation: 0, era: self.era }
    }

    /// Master side: declares the next expired machine dead, if any.
    /// Marks it dead, advances the era past everything observed, and
    /// returns `(victim, era)` for the `K_DOWN` broadcast. Each victim is
    /// declared exactly once.
    pub fn expired(&mut self) -> Option<(u16, u32)> {
        if !self.is_master() {
            return None;
        }
        let n = self.last_seen.len();
        for j in 0..n {
            if j == self.me as usize || self.dead[j] {
                continue;
            }
            if self.last_seen[j].elapsed() > self.cfg.period {
                self.dead[j] = true;
                self.era += 1;
                return Some((j as u16, self.era));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from, encode_to_bytes};

    #[test]
    fn lease_msg_roundtrips() {
        let m = LeaseMsg { machine: 7, incarnation: 3, era: 12 };
        assert_eq!(decode_from::<LeaseMsg>(encode_to_bytes(&m)), Some(m));
    }

    #[test]
    fn refresh_keeps_lease_alive_and_expiry_fires_once() {
        let cfg = LeaseConfig::with_period(Duration::from_millis(40));
        let mut l = LeaseState::new(0, 3, cfg);
        std::thread::sleep(Duration::from_millis(25));
        l.refresh(1); // machine 1 talked; machine 2 stays silent
        assert_eq!(l.expired(), None, "nothing expired yet");
        std::thread::sleep(Duration::from_millis(25));
        // Machine 2 has now been silent for ~50ms > 40ms; machine 1 for ~25ms.
        assert_eq!(l.expired(), Some((2, 1)));
        assert!(l.is_dead(2));
        assert_eq!(l.expired(), None, "a death is declared exactly once");
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(l.expired(), Some((1, 2)), "next victim gets the next era");
    }

    #[test]
    fn dead_machines_cannot_refresh() {
        let cfg = LeaseConfig::with_period(Duration::from_millis(20));
        let mut l = LeaseState::new(0, 2, cfg);
        l.observe_death(1, 5);
        l.refresh(1); // delayed heartbeat from the corpse
        assert!(l.is_dead(1));
        assert_eq!(l.era(), 5);
        assert_eq!(l.expired(), None, "already dead: no duplicate declaration");
    }

    #[test]
    fn heartbeat_cadence_is_half_period() {
        let cfg = LeaseConfig::with_period(Duration::from_millis(30));
        let mut l = LeaseState::new(1, 2, cfg);
        assert!(!l.heartbeat_due());
        std::thread::sleep(Duration::from_millis(16));
        assert!(l.heartbeat_due());
        l.note_sent_to_master();
        assert!(!l.heartbeat_due());
    }

    #[test]
    fn workers_never_declare_deaths() {
        let cfg = LeaseConfig::with_period(Duration::from_millis(1));
        let mut l = LeaseState::new(1, 3, cfg);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(l.expired(), None);
    }
}
