//! Network latency model.
//!
//! §4.2.2 is entirely about hiding the latency of remote lock acquisition
//! and data synchronisation, so the simulator must actually impose latency
//! for the pipelining experiments (Fig. 3(b), Fig. 8(b)) to be meaningful.
//!
//! The model charges each message a *transmission* term `per_kib × ⌈size⌉`
//! (the link is occupied for that long — see
//! [`LatencyModel::transmit_time`]) plus a *propagation* term
//! `fixed + jitter` ([`LatencyModel::propagation_delay`]). Jitter is
//! one-sided — drawn uniformly from `[0, jitter]` and **added**; it never
//! delivers a message early — from a deterministic xorshift stream so runs
//! are reproducible without pulling a RNG dependency into the hot send
//! path.

use std::time::Duration;

/// Per-message delivery delay model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed one-way latency applied to every message.
    pub fixed: Duration,
    /// Additional delay per KiB of payload (bandwidth term). This is
    /// *transmission* time: the link is busy for this long, so queued
    /// messages behind a large one are charged its serialization delay.
    pub per_kib: Duration,
    /// Maximum jitter: a one-sided uniform draw from `[0, jitter]` that is
    /// **added** to the propagation delay (delivery is never early).
    pub jitter: Duration,
}

impl LatencyModel {
    /// Zero latency: messages are delivered directly (fast path used by
    /// most tests).
    pub const ZERO: LatencyModel = LatencyModel {
        fixed: Duration::ZERO,
        per_kib: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// A model loosely calibrated to the paper's environment: 10 GbE
    /// between EC2 cc1.4xlarge nodes — ~100 µs one-way RPC latency and
    /// ~1 GiB/s effective per-link bandwidth (≈1 µs per KiB).
    pub fn ec2_like() -> LatencyModel {
        LatencyModel {
            fixed: Duration::from_micros(100),
            per_kib: Duration::from_micros(1),
            jitter: Duration::from_micros(20),
        }
    }

    /// Uniform fixed latency, no bandwidth or jitter terms.
    pub fn fixed(latency: Duration) -> LatencyModel {
        LatencyModel { fixed: latency, per_kib: Duration::ZERO, jitter: Duration::ZERO }
    }

    /// Whether this model never delays any message.
    pub fn is_zero(&self) -> bool {
        self.fixed.is_zero() && self.per_kib.is_zero() && self.jitter.is_zero()
    }

    /// Time the link is *occupied* transmitting a message of `bytes`
    /// bytes (the bandwidth term). The fabric serializes a channel's
    /// messages, so this also charges queueing delay to whatever is sent
    /// behind it.
    pub fn transmit_time(&self, bytes: usize) -> Duration {
        let kib = bytes.div_ceil(1024) as u32;
        self.per_kib * kib
    }

    /// Propagation delay for one message: `fixed` plus a one-sided jitter
    /// draw from `[0, jitter]`. `rng_state` is the caller's xorshift state
    /// (mutated). Independent of message size.
    pub fn propagation_delay(&self, rng_state: &mut u64) -> Duration {
        let mut d = self.fixed;
        if !self.jitter.is_zero() {
            let r = xorshift64(rng_state);
            let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
            d += Duration::from_nanos((self.jitter.as_nanos() as f64 * frac) as u64);
        }
        d
    }

    /// Total one-message delay on an otherwise idle link: transmission
    /// plus propagation. (On a busy link the fabric additionally charges
    /// queueing behind earlier messages.)
    pub fn delay(&self, bytes: usize, rng_state: &mut u64) -> Duration {
        self.transmit_time(bytes) + self.propagation_delay(rng_state)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::ZERO
    }
}

/// Minimal xorshift64 PRNG step (Marsaglia); good enough for jitter.
#[inline]
pub(crate) fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    debug_assert!(x != 0, "xorshift state must be non-zero");
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_zero() {
        assert!(LatencyModel::ZERO.is_zero());
        let mut s = 1u64;
        assert_eq!(LatencyModel::ZERO.delay(10_000, &mut s), Duration::ZERO);
    }

    #[test]
    fn fixed_plus_bandwidth() {
        let m = LatencyModel {
            fixed: Duration::from_micros(100),
            per_kib: Duration::from_micros(10),
            jitter: Duration::ZERO,
        };
        let mut s = 1u64;
        assert_eq!(m.delay(0, &mut s), Duration::from_micros(100));
        assert_eq!(m.delay(1, &mut s), Duration::from_micros(110));
        assert_eq!(m.delay(1024, &mut s), Duration::from_micros(110));
        assert_eq!(m.delay(1025, &mut s), Duration::from_micros(120));
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let m = LatencyModel {
            fixed: Duration::from_micros(50),
            per_kib: Duration::ZERO,
            jitter: Duration::from_micros(10),
        };
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        for _ in 0..100 {
            let d1 = m.delay(100, &mut s1);
            let d2 = m.delay(100, &mut s2);
            assert_eq!(d1, d2);
            assert!(d1 >= Duration::from_micros(50));
            assert!(d1 <= Duration::from_micros(60));
        }
    }

    #[test]
    fn transmit_and_propagation_partition_the_delay() {
        let m = LatencyModel {
            fixed: Duration::from_micros(100),
            per_kib: Duration::from_micros(10),
            jitter: Duration::from_micros(25),
        };
        assert_eq!(m.transmit_time(0), Duration::ZERO);
        assert_eq!(m.transmit_time(2048), Duration::from_micros(20));
        let mut s1 = 99u64;
        let mut s2 = 99u64;
        assert_eq!(
            m.delay(2048, &mut s1),
            m.transmit_time(2048) + m.propagation_delay(&mut s2)
        );
    }

    #[test]
    fn jitter_is_one_sided_and_bounded() {
        // The doc contract: jitter only ever *adds* delay, uniform in
        // [0, jitter]; propagation never undercuts `fixed`.
        let m = LatencyModel {
            fixed: Duration::from_micros(70),
            per_kib: Duration::ZERO,
            jitter: Duration::from_micros(15),
        };
        let mut s = 1234u64;
        for _ in 0..500 {
            let d = m.propagation_delay(&mut s);
            assert!(d >= m.fixed, "jitter must never deliver early: {d:?}");
            assert!(d <= m.fixed + m.jitter, "jitter exceeds bound: {d:?}");
        }
    }

    #[test]
    fn xorshift_covers_range() {
        let mut s = 7u64;
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..1000 {
            let v = xorshift64(&mut s);
            if v > u64::MAX / 2 {
                seen_high = true;
            } else {
                seen_low = true;
            }
        }
        assert!(seen_high && seen_low);
    }
}
