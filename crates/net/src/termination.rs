//! Distributed termination detection.
//!
//! The locking engine runs until every machine's scheduler is empty *and*
//! no scheduling/locking messages are in flight (§4.2.2: "Termination is
//! evaluated using the distributed consensus algorithm described in
//! [Misra 83]"). We implement the token/marker family in its
//! counter-carrying form (Safra's refinement): a token circulates a
//! logical ring accumulating per-machine (sent − received) message counts
//! and a "colour"; the initiator announces termination only after a clean
//! white round with a zero global count.
//!
//! The detector is a *pure state machine*: it never touches the network.
//! The engine drives it with [`Safra::on_message_sent`],
//! [`Safra::on_message_received`], [`Safra::set_idle`] and
//! [`Safra::on_token`], and performs whatever [`SafraAction`] comes back
//! (forwarding tokens as ordinary engine messages). This makes the
//! algorithm unit-testable without threads.
//!
//! # Faults
//!
//! The ring carries exactly one token, so a machine crash can lose it (in
//! flight to or held by the victim) — after which **no probe ever
//! completes and every machine waits forever**. The algorithm has no
//! internal timeout; the engine layer must pair it with a bounded
//! `recv_timeout` and a death check (the locking engine's fault recovery
//! does), and call [`Safra::reset`] on every machine when rolling back:
//! counters restart from zero and the initiator launches a fresh probe.
//! `tests::lost_token_deadlocks_until_reset` pins the failure mode and
//! the fix.

use bytes::{Bytes, BytesMut};
use graphlab_graph::MachineId;

use crate::codec::Codec;

/// The circulating probe token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Accumulated (sent − received) counts of machines already visited
    /// this round.
    pub count: i64,
    /// Whether any visited machine was black (received a message since its
    /// last token forward), invalidating the round.
    pub black: bool,
    /// Probe round number (diagnostics only).
    pub round: u32,
}

impl Codec for Token {
    fn encode(&self, buf: &mut BytesMut) {
        self.count.encode(buf);
        self.black.encode(buf);
        self.round.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(Token {
            count: i64::decode(buf)?,
            black: bool::decode(buf)?,
            round: u32::decode(buf)?,
        })
    }
}

/// Instruction returned to the engine after driving the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SafraAction {
    /// Nothing to do.
    None,
    /// Forward `token` to machine `to` (the ring successor).
    SendToken {
        /// Ring successor to forward to.
        to: MachineId,
        /// Token to forward.
        token: Token,
    },
    /// Global termination detected (only ever returned on the initiator).
    Terminated,
}

/// Per-machine termination detector state.
pub struct Safra {
    id: MachineId,
    n: usize,
    /// True if this machine received an engine message since it last
    /// forwarded the token.
    black: bool,
    /// Engine messages sent minus received by this machine (all time).
    counter: i64,
    /// Token parked here waiting for the machine to go idle.
    held: Option<Token>,
    idle: bool,
    /// Set when the initiator should start a fresh probe on next idle.
    initiate_pending: bool,
    terminated: bool,
}

impl Safra {
    /// Creates the detector for machine `id` of `n`. Machine 0 is the
    /// initiator.
    pub fn new(id: MachineId, n: usize) -> Self {
        assert!(n >= 1);
        Safra {
            id,
            n,
            black: false,
            counter: 0,
            held: None,
            idle: false,
            initiate_pending: id == MachineId(0),
            terminated: false,
        }
    }

    /// Whether termination has been announced on this machine (initiator
    /// only; other machines learn via the engine's own halt broadcast).
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Restores the fresh-start state — the fault-recovery hook. A machine
    /// crash can lose the ring's only token (held by or in flight to the
    /// victim), deadlocking every future probe; a cluster rollback must
    /// reset **every** machine's detector together (message counters
    /// restart at zero alongside the re-seeded schedulers, and the
    /// initiator re-probes on its next idle).
    pub fn reset(&mut self) {
        *self = Safra::new(self.id, self.n);
    }

    fn successor(&self) -> MachineId {
        MachineId::from((self.id.index() + 1) % self.n)
    }

    /// The engine sent `k` work-bearing messages.
    pub fn on_message_sent(&mut self, k: u64) {
        self.counter += k as i64;
    }

    /// The engine received `k` work-bearing messages. Receipt of work makes
    /// the machine black: any probe round that already passed it is void.
    pub fn on_message_received(&mut self, k: u64) {
        self.counter -= k as i64;
        self.black = true;
    }

    /// Updates the idle flag (idle = scheduler empty, pipeline empty,
    /// workers quiescent) and releases a held token if possible.
    pub fn set_idle(&mut self, idle: bool) -> SafraAction {
        self.idle = idle;
        if !idle {
            return SafraAction::None;
        }
        self.advance()
    }

    /// Handles an arriving token.
    pub fn on_token(&mut self, token: Token) -> SafraAction {
        debug_assert!(self.held.is_none(), "at most one token in the ring");
        self.held = Some(token);
        if self.idle {
            self.advance()
        } else {
            SafraAction::None
        }
    }

    fn advance(&mut self) -> SafraAction {
        if self.terminated {
            return SafraAction::None;
        }
        // Single-machine special case: termination == local idleness with a
        // zero counter (self-sends still count as in-flight work).
        if self.n == 1 {
            if self.idle && self.counter == 0 {
                self.terminated = true;
                return SafraAction::Terminated;
            }
            return SafraAction::None;
        }
        if self.initiate_pending {
            self.initiate_pending = false;
            self.black = false;
            // The token starts at zero: the initiator's own counter is
            // folded in at decision time, not at initiation (adding it in
            // both places would double-count it).
            return SafraAction::SendToken {
                to: self.successor(),
                token: Token { count: 0, black: false, round: 0 },
            };
        }
        let Some(token) = self.held.take() else {
            return SafraAction::None;
        };
        if self.id == MachineId(0) {
            // Probe returned to the initiator: decide or start a new round.
            let clean = !token.black && !self.black && token.count + self.counter == 0;
            if clean {
                self.terminated = true;
                return SafraAction::Terminated;
            }
            self.black = false;
            return SafraAction::SendToken {
                to: self.successor(),
                token: Token { count: 0, black: false, round: token.round + 1 },
            };
        }
        // Ordinary machine: accumulate and whiten.
        let out = Token {
            count: token.count + self.counter,
            black: token.black || self.black,
            round: token.round,
        };
        self.black = false;
        SafraAction::SendToken { to: self.successor(), token: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a ring of detectors to completion, simulating the engine
    /// layer: `deliver(from, to)` moves pending work messages.
    struct Ring {
        machines: Vec<Safra>,
        /// In-flight tokens: (dst, token).
        tokens: Vec<(MachineId, Token)>,
        terminated: bool,
    }

    impl Ring {
        fn new(n: usize) -> Ring {
            Ring {
                machines: (0..n).map(|i| Safra::new(MachineId::from(i), n)).collect(),
                tokens: Vec::new(),
                terminated: false,
            }
        }

        fn apply(&mut self, action: SafraAction) {
            match action {
                SafraAction::None => {}
                SafraAction::SendToken { to, token } => self.tokens.push((to, token)),
                SafraAction::Terminated => self.terminated = true,
            }
        }

        fn all_idle(&mut self) {
            for i in 0..self.machines.len() {
                let a = self.machines[i].set_idle(true);
                self.apply(a);
            }
        }

        fn pump(&mut self, max_steps: usize) -> bool {
            for _ in 0..max_steps {
                if self.terminated {
                    return true;
                }
                let Some((dst, tok)) = self.tokens.pop() else {
                    return self.terminated;
                };
                let a = self.machines[dst.index()].on_token(tok);
                self.apply(a);
            }
            self.terminated
        }
    }

    #[test]
    fn quiescent_ring_terminates() {
        let mut ring = Ring::new(4);
        ring.all_idle();
        assert!(ring.pump(100), "idle ring with no traffic must terminate");
    }

    #[test]
    fn single_machine_terminates_when_idle() {
        let mut s = Safra::new(MachineId(0), 1);
        assert_eq!(s.set_idle(true), SafraAction::Terminated);
        assert!(s.is_terminated());
    }

    #[test]
    fn single_machine_waits_for_selfwork() {
        let mut s = Safra::new(MachineId(0), 1);
        s.on_message_sent(1);
        assert_eq!(s.set_idle(true), SafraAction::None);
        s.on_message_received(1);
        assert_eq!(s.set_idle(true), SafraAction::Terminated);
    }

    #[test]
    fn in_flight_message_blocks_termination() {
        let mut ring = Ring::new(3);
        // Machine 1 sent a message that machine 2 has not received yet.
        ring.machines[1].on_message_sent(1);
        ring.all_idle();
        assert!(!ring.pump(10), "must not terminate with message in flight");
        // Deliver it: machine 2 turns black, counters cancel.
        ring.machines[2].on_message_received(1);
        let a = ring.machines[2].set_idle(true);
        ring.apply(a);
        assert!(ring.pump(100), "terminates after delivery + extra rounds");
    }

    #[test]
    fn busy_machine_holds_token() {
        let mut ring = Ring::new(2);
        let a = ring.machines[0].set_idle(true);
        ring.apply(a);
        // machine 1 is busy: token parks there.
        let (dst, tok) = ring.tokens.pop().unwrap();
        assert_eq!(dst, MachineId(1));
        assert_eq!(ring.machines[1].on_token(tok), SafraAction::None);
        // Going idle releases it back around the ring to completion.
        let a = ring.machines[1].set_idle(true);
        ring.apply(a);
        assert!(ring.pump(100));
    }

    #[test]
    fn black_round_retries() {
        let mut ring = Ring::new(3);
        ring.all_idle();
        // Inject late traffic: 0 -> 2 after the probe started.
        ring.machines[0].on_message_sent(1);
        ring.machines[2].on_message_received(1);
        // Even so, counts cancel and the blackness washes out after at most
        // two more clean rounds.
        assert!(ring.pump(100));
    }

    #[test]
    fn lost_token_deadlocks_until_reset() {
        // Fault audit: machine 2 dies while holding the token. The ring
        // deadlocks — no amount of pumping terminates — until recovery
        // resets every detector and the initiator starts a fresh probe.
        let mut ring = Ring::new(4);
        ring.all_idle();
        let (dst, _tok) = ring.tokens.pop().expect("probe in flight");
        assert_eq!(dst, MachineId(1));
        // The token is swallowed (delivered to a machine that crashes with
        // it): nothing is in flight any more.
        assert!(ring.tokens.is_empty());
        assert!(!ring.pump(1_000), "lost token must never terminate the ring");
        // Recovery: every machine resets together, then goes idle again.
        for m in &mut ring.machines {
            m.reset();
        }
        ring.all_idle();
        assert!(ring.pump(1_000), "reset ring re-probes and terminates");
    }

    #[test]
    fn reset_clears_counters_and_colour() {
        let mut s = Safra::new(MachineId(1), 3);
        s.on_message_sent(7);
        s.on_message_received(2); // also blackens
        s.reset();
        // After the cluster-wide rollback nothing is in flight: a clean
        // white round with zero counters must succeed immediately.
        let a = s.set_idle(true);
        assert_eq!(a, SafraAction::None, "non-initiator holds no token");
        let out = s.on_token(Token { count: 0, black: false, round: 0 });
        match out {
            SafraAction::SendToken { to, token } => {
                assert_eq!(to, MachineId(2));
                assert_eq!(token, Token { count: 0, black: false, round: 0 });
            }
            other => panic!("expected clean forward, got {other:?}"),
        }
    }

    #[test]
    fn token_codec_roundtrip() {
        let t = Token { count: -5, black: true, round: 9 };
        let enc = crate::codec::encode_to_bytes(&t);
        assert_eq!(crate::codec::decode_from::<Token>(enc), Some(t));
    }

    #[test]
    fn no_premature_termination_with_asymmetric_counts() {
        let mut ring = Ring::new(4);
        // 5 messages sent by m0, only 3 received by m3 so far.
        ring.machines[0].on_message_sent(5);
        ring.machines[3].on_message_received(3);
        ring.all_idle();
        assert!(!ring.pump(50));
        ring.machines[3].on_message_received(2);
        let a = ring.machines[3].set_idle(true);
        ring.apply(a);
        assert!(ring.pump(100));
    }
}
