//! The simulated cluster fabric: machine endpoints, message envelopes,
//! delayed delivery, and traffic accounting.
//!
//! A [`SimNet`] wires `n` machine [`SimEndpoint`]s together. Sending is
//! non-blocking (channels are unbounded, like the paper's asynchronous RPC
//! over TCP); receiving blocks with optional timeout. When the
//! [`LatencyModel`] is non-zero a dedicated delivery thread holds messages
//! in a deliver-at-ordered heap.
//!
//! # Delivery guarantees
//!
//! 1. **Per-channel FIFO.** Messages from machine A to machine B are
//!    delivered in send order under *every* latency model. Each (src, dst)
//!    channel tracks the delivery time of its last-scheduled message and
//!    clamps successors to be no earlier, so a small message can never
//!    overtake a large or unluckily-jittered predecessor on the same
//!    channel — the property TCP gives the paper's RPC layer, and which
//!    both engines' protocols (schedule-before-release, the Alg. 5
//!    snapshot marker, the chromatic counting flush) depend on.
//! 2. **Bandwidth-serialized links.** A channel transmits one message at a
//!    time: `per_kib` charges *queueing* delay, not just propagation. A
//!    burst of scope-data transfers occupies the link back-to-back and
//!    realistically delays the grants queued behind it.
//! 3. **No cross-channel ordering.** Messages from different senders (or
//!    to different destinations) may interleave arbitrarily, exactly like
//!    independent TCP connections.
//!
//! Traffic accounting: `*_sent` counters are charged at send time,
//! `*_received` at actual delivery into the destination inbox — messages
//! still in flight at shutdown are never counted as received. Per-kind
//! counters ([`NetStats::by_kind`]) follow the same delivery rule; batch
//! envelopes are attributed to the kinds *inside* them (the envelope row
//! keeps only the wire header), while compressed envelopes are opaque and
//! charged to [`crate::batch::K_ZIP`] — run an uncompressed arm when a
//! per-kind breakdown of the savings is wanted.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Buf, Bytes};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use graphlab_graph::MachineId;
use parking_lot::Mutex;

use crate::fault::{FaultEvent, FaultPlan, FaultState};
use crate::latency::LatencyModel;

/// Shared, lock-protected fault state (present only when a
/// [`FaultPlan`] was installed).
type FaultCtl = Arc<Mutex<FaultState>>;

/// Framing overhead charged per message on top of the payload, emulating
/// TCP/IP + RPC headers (src, dst, kind, length, and transport framing).
pub const HEADER_BYTES: usize = 24;

/// A routed message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending machine.
    pub src: MachineId,
    /// Destination machine.
    pub dst: MachineId,
    /// Application-defined message kind (each subsystem defines its own
    /// tag space).
    pub kind: u16,
    /// Byte-encoded payload (see [`crate::codec::Codec`]).
    pub payload: Bytes,
}

impl Envelope {
    /// Wire size charged to the traffic counters.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }
}

/// Per-machine traffic snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineTraffic {
    /// Bytes sent by this machine (wire size incl. headers).
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_received: u64,
}

/// Cluster-wide traffic of one message kind (charged at delivery).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindTraffic {
    /// Logical messages delivered with this kind (sub-messages of a batch
    /// envelope count individually).
    pub msgs: u64,
    /// Wire bytes attributed to this kind: full wire size for plain
    /// envelopes, per-submessage framing + payload inside batches, and the
    /// bare [`HEADER_BYTES`] for the batch envelope row itself.
    pub bytes: u64,
}

/// Shared atomic traffic counters for a cluster.
pub struct NetStats {
    bytes_sent: Vec<AtomicU64>,
    bytes_received: Vec<AtomicU64>,
    msgs_sent: Vec<AtomicU64>,
    msgs_received: Vec<AtomicU64>,
    by_kind: Mutex<HashMap<u16, KindTraffic>>,
}

impl NetStats {
    pub(crate) fn new(n: usize) -> Self {
        let mk = || (0..n).map(|_| AtomicU64::new(0)).collect();
        NetStats {
            bytes_sent: mk(),
            bytes_received: mk(),
            msgs_sent: mk(),
            msgs_received: mk(),
            by_kind: Mutex::new(HashMap::new()),
        }
    }

    /// Snapshot of one machine's counters.
    pub fn machine(&self, m: MachineId) -> MachineTraffic {
        let i = m.index();
        MachineTraffic {
            bytes_sent: self.bytes_sent[i].load(Ordering::Relaxed),
            bytes_received: self.bytes_received[i].load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent[i].load(Ordering::Relaxed),
            msgs_received: self.msgs_received[i].load(Ordering::Relaxed),
        }
    }

    /// Snapshot of every machine.
    pub fn all(&self) -> Vec<MachineTraffic> {
        (0..self.bytes_sent.len()).map(|i| self.machine(MachineId::from(i))).collect()
    }

    /// Total bytes sent across the cluster.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total messages sent across the cluster.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_sent.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Delivered traffic of one message kind.
    pub fn kind(&self, kind: u16) -> KindTraffic {
        self.by_kind.lock().get(&kind).copied().unwrap_or_default()
    }

    /// Delivered traffic broken down by message kind, sorted by kind.
    pub fn by_kind(&self) -> Vec<(u16, KindTraffic)> {
        let mut rows: Vec<(u16, KindTraffic)> =
            // lint: allow(determinism) -- snapshot of a stats map; rows are sorted by kind on the next line
            self.by_kind.lock().iter().map(|(&k, &t)| (k, t)).collect();
        rows.sort_unstable_by_key(|&(k, _)| k);
        rows
    }

    /// Charges (`sign = 1`) or rolls back (`sign = -1`) one envelope's
    /// attribution rows under a single lock acquisition. Internal to
    /// delivery.
    fn charge_kinds(&self, rows: &[(u16, u64)], sign: i64) {
        let mut map = self.by_kind.lock();
        for &(k, b) in rows {
            let e = map.entry(k).or_default();
            e.msgs = e.msgs.wrapping_add_signed(sign);
            e.bytes = e.bytes.wrapping_add_signed(sign * b as i64);
        }
    }
}

/// Per-kind attribution of one delivered envelope: `(kind, bytes)` rows.
/// Batch envelopes are split into their sub-messages (framing + payload
/// each), with the transport header on the envelope row.
fn kind_attribution(env: &Envelope) -> Vec<(u16, u64)> {
    use crate::batch::K_BATCH;
    use crate::codec::get_uvarint;
    if env.kind != K_BATCH {
        return vec![(env.kind, env.wire_bytes() as u64)];
    }
    let mut rows = vec![(K_BATCH, HEADER_BYTES as u64)];
    let mut buf = env.payload.clone();
    while buf.has_remaining() {
        let before = buf.remaining();
        let (Some(kind), Some(len)) = (get_uvarint(&mut buf), get_uvarint(&mut buf)) else {
            break; // malformed; charge what parsed
        };
        let header = before - buf.remaining();
        let len = len as usize;
        if buf.remaining() < len {
            break;
        }
        buf.advance(len);
        rows.push((kind as u16, (header + len) as u64));
    }
    rows
}

/// Error returned by blocking receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The fabric was shut down (all senders dropped).
    Disconnected,
    /// This machine has been killed by the fault plan: its inbox is
    /// drained on the floor and nothing can be sent or received until the
    /// scheduled restart (if any) marks it alive again.
    MachineDown,
}

struct Delayed {
    deliver_at: Instant,
    seq: u64,
    env: Envelope,
    /// (src, dst) incarnations at send time: a fault-era check at the
    /// delivery point drops messages from before a crash.
    incs: (u32, u32),
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Send-side state of one (src, dst) channel: the link is modelled as a
/// serial pipe, so each message queues behind the previous one.
struct ChannelState {
    /// When the link finishes transmitting the last message queued on it.
    free_at: Instant,
    /// Delivery time of the last message scheduled on this channel; every
    /// successor is clamped to be no earlier (per-channel FIFO).
    last_deliver_at: Instant,
}

/// Send-side state shared under one lock: the jitter RNG, the global send
/// sequence (heap tie-break), and one [`ChannelState`] per destination.
struct SendState {
    jitter: u64,
    seq: u64,
    channels: Vec<ChannelState>,
}

/// One machine's handle on the fabric.
pub struct SimEndpoint {
    id: MachineId,
    n: usize,
    direct: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    delay_tx: Option<Sender<Delayed>>,
    latency: LatencyModel,
    stats: Arc<NetStats>,
    faults: Option<FaultCtl>,
    // Send-side state; endpoints are owned by exactly one machine thread.
    send_state: Mutex<SendState>,
}

impl SimEndpoint {
    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.n
    }

    /// Traffic counters shared by the whole cluster.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Sends `payload` to `dst` with application tag `kind`.
    ///
    /// Self-sends are delivered through the same path (useful for uniform
    /// engine code), but charged zero network bytes.
    ///
    /// Under a fault plan, a dead machine's sends vanish without touching
    /// any counter (the process is gone), while sends *to* a dead machine
    /// are still charged as sent and dropped at the delivery point.
    pub fn send(&self, dst: MachineId, kind: u16, payload: Bytes) {
        let env = Envelope { src: self.id, dst, kind, payload };
        let wire = env.wire_bytes() as u64;
        // Fault gate at the send point.
        let mut incs = (0u32, 0u32);
        if let Some(f) = &self.faults {
            let mut st = f.lock();
            // lint: allow(determinism) -- resolves wall-clock Elapsed fault triggers; delivery-count triggers are the deterministic path
            st.poll(Instant::now());
            if !st.is_alive(self.id.index()) {
                return;
            }
            incs = st.incarnations(self.id.index(), dst.index());
        }
        if dst != self.id {
            self.stats.bytes_sent[self.id.index()].fetch_add(wire, Ordering::Relaxed);
            self.stats.msgs_sent[self.id.index()].fetch_add(1, Ordering::Relaxed);
        }
        match (&self.delay_tx, dst == self.id) {
            (Some(delay), false) => {
                let mut st = self.send_state.lock();
                // lint: allow(determinism) -- SimNet's clock for imposing link latency; ordering is pinned by the per-channel FIFO clamp, not by timing
                let now = Instant::now();
                let tx = self.latency.transmit_time(env.wire_bytes());
                let prop = self.latency.propagation_delay(&mut st.jitter);
                let seq = st.seq;
                st.seq += 1;
                let ch = &mut st.channels[dst.index()];
                // Link serialization: transmission starts when the channel
                // is free, charging queueing delay behind earlier
                // (possibly large) messages.
                let start = ch.free_at.max(now);
                ch.free_at = start + tx;
                // FIFO clamp: jitter must not let this message arrive
                // before its channel predecessor.
                let deliver_at = (ch.free_at + prop).max(ch.last_deliver_at);
                ch.last_deliver_at = deliver_at;
                // The push to the delivery thread stays under the lock:
                // heap-insertion order must match schedule order, or a
                // concurrent sender on the same channel could get its
                // later message delivered while this one is in transit to
                // the heap. Delivery thread gone => shutting down; drop.
                let _ = delay.send(Delayed { deliver_at, seq, env, incs });
            }
            _ => {
                if dst == self.id {
                    // Self-sends are free and always deliverable (we hold
                    // the receiver); skip the counters entirely.
                    let _ = self.direct[dst.index()].send(env);
                } else if let Some(f) = &self.faults {
                    // lint: allow(determinism) -- fault-gate delivery timestamp; the fault trace is keyed by delivery counts, not times
                    f.lock().on_deliver(env, incs.0, incs.1, Instant::now());
                } else {
                    deliver(&self.direct, &self.stats, env);
                }
            }
        }
    }

    /// Broadcasts to every *other* machine.
    pub fn broadcast(&self, kind: u16, payload: &Bytes) {
        for i in 0..self.n {
            let dst = MachineId::from(i);
            if dst != self.id {
                self.send(dst, kind, payload.clone());
            }
        }
    }

    /// If this machine is currently dead, drains its inbox (a crash loses
    /// volatile state) and reports whether a restart is scheduled.
    /// `None` = alive.
    fn dead_check(&self) -> Option<bool> {
        let f = self.faults.as_ref()?;
        let mut st = f.lock();
        // lint: allow(determinism) -- resolves wall-clock Elapsed fault triggers; delivery-count triggers are the deterministic path
        st.poll(Instant::now());
        if st.is_alive(self.id.index()) {
            return None;
        }
        // Drain under the fault lock: a restart (which injects the K_UP
        // marker) cannot interleave with the drain, so the marker is never
        // swept away.
        while self.rx.try_recv().is_ok() {}
        Some(st.restart_scheduled(self.id.index()))
    }

    /// Whether this machine is currently dead, and if so whether the plan
    /// schedules a restart (`Some(true)` = will come back). An engine that
    /// sees [`RecvError::MachineDown`] uses this to decide between waiting
    /// for rebirth and giving up.
    pub fn self_death(&self) -> Option<bool> {
        self.dead_check()
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        if self.dead_check().is_some() {
            return Err(RecvError::MachineDown);
        }
        // lint: allow(blocking-recv) -- the transport-layer primitive itself; engines only call the seam's recv_timeout (PR 5 termination audit)
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Blocking receive with timeout. When the machine is dead the call
    /// sleeps briefly (bounded by `timeout`) and returns
    /// [`RecvError::MachineDown`], so engine loops poll their way through
    /// the dead window without spinning.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        if self.dead_check().is_some() {
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            return Err(RecvError::MachineDown);
        }
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, RecvError> {
        if self.dead_check().is_some() {
            return Err(RecvError::MachineDown);
        }
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Timeout,
            TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }
}

/// Builder/owner of the cluster fabric.
pub struct SimNet {
    stats: Arc<NetStats>,
    faults: Option<FaultCtl>,
    delivery: Option<std::thread::JoinHandle<()>>,
}

impl SimNet {
    /// Creates a fabric of `n` machines with the given latency model and
    /// returns one endpoint per machine.
    pub fn new(n: usize, latency: LatencyModel) -> (SimNet, Vec<SimEndpoint>) {
        Self::with_seed(n, latency, 0x9E37_79B9_7F4A_7C15)
    }

    /// As [`SimNet::new`] with an explicit jitter seed.
    pub fn with_seed(n: usize, latency: LatencyModel, seed: u64) -> (SimNet, Vec<SimEndpoint>) {
        Self::build(n, latency, seed, None)
    }

    /// As [`SimNet::with_seed`], with a [`FaultPlan`] mediating every
    /// delivery (see [`crate::fault`]).
    pub fn with_faults(
        n: usize,
        latency: LatencyModel,
        seed: u64,
        plan: FaultPlan,
    ) -> (SimNet, Vec<SimEndpoint>) {
        Self::build(n, latency, seed, Some(plan))
    }

    fn build(
        n: usize,
        latency: LatencyModel,
        seed: u64,
        plan: Option<FaultPlan>,
    ) -> (SimNet, Vec<SimEndpoint>) {
        assert!(n > 0, "cluster needs at least one machine");
        let stats = Arc::new(NetStats::new(n));
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::unbounded();
            txs.push(tx);
            rxs.push(rx);
        }

        let faults: Option<FaultCtl> = plan.map(|p| {
            Arc::new(Mutex::new(FaultState::new(p, n, txs.clone(), Arc::clone(&stats))))
        });

        let (delay_tx, delivery) = if latency.is_zero() {
            (None, None)
        } else {
            let (dtx, drx) = channel::unbounded::<Delayed>();
            let inboxes = txs.clone();
            let dstats = Arc::clone(&stats);
            let dfaults = faults.clone();
            let handle = std::thread::Builder::new()
                .name("simnet-delivery".into())
                .spawn(move || delivery_loop(drx, inboxes, dstats, dfaults))
                .expect("spawn delivery thread");
            (Some(dtx), Some(handle))
        };

        // lint: allow(determinism) -- run-start epoch for the virtual clock; never enters payloads or traces
        let epoch = Instant::now();
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| SimEndpoint {
                id: MachineId::from(i),
                n,
                direct: txs.clone(),
                rx,
                delay_tx: delay_tx.clone(),
                latency,
                stats: Arc::clone(&stats),
                faults: faults.clone(),
                send_state: Mutex::new(SendState {
                    jitter: seed ^ (i as u64 + 1).wrapping_mul(0xA24B_AED4_963E_E407),
                    seq: 0,
                    channels: (0..n)
                        .map(|_| ChannelState { free_at: epoch, last_deliver_at: epoch })
                        .collect(),
                }),
            })
            .collect();

        (SimNet { stats, faults, delivery }, endpoints)
    }

    /// Traffic counters for the cluster.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Drains the recorded fault-layer event log (empty unless the plan
    /// enabled [`FaultPlan::trace`]).
    pub fn fault_trace(&self) -> Vec<FaultEvent> {
        self.faults.as_ref().map(|f| f.lock().take_trace()).unwrap_or_default()
    }
}

impl Drop for SimNet {
    fn drop(&mut self) {
        // The delivery thread exits once all endpoints (and their delay_tx
        // clones) are dropped; join if it already can be.
        if let Some(h) = self.delivery.take() {
            let _ = h.join();
        }
    }
}

/// Charges one envelope to the send-side counters. Transports call this at
/// the send point (self-sends are free and must not be charged).
pub(crate) fn charge_send(stats: &NetStats, env: &Envelope) {
    let src = env.src.index();
    stats.bytes_sent[src].fetch_add(env.wire_bytes() as u64, Ordering::Relaxed);
    stats.msgs_sent[src].fetch_add(1, Ordering::Relaxed);
}

/// Charges one envelope to the receive-side counters (per-machine and
/// per-kind rows). Transports call this exactly once per envelope actually
/// handed to a destination inbox — never for messages lost in flight.
pub(crate) fn charge_delivery(stats: &NetStats, env: &Envelope) {
    let dst = env.dst.index();
    stats.bytes_received[dst].fetch_add(env.wire_bytes() as u64, Ordering::Relaxed);
    stats.msgs_received[dst].fetch_add(1, Ordering::Relaxed);
    stats.charge_kinds(&kind_attribution(env), 1);
}

/// Hands `env` to its destination inbox and charges the receive counters.
/// Receives are counted here — at actual delivery — not at send time, so
/// undeliverable messages (receiver already gone) never inflate the stats.
/// The counters are bumped *before* the handoff (so a receiver that has the
/// message always observes them) and rolled back if the inbox is gone.
pub(crate) fn deliver(inboxes: &[Sender<Envelope>], stats: &NetStats, env: Envelope) {
    let dst = env.dst.index();
    let wire = env.wire_bytes() as u64;
    let kinds = kind_attribution(&env);
    stats.bytes_received[dst].fetch_add(wire, Ordering::Relaxed);
    stats.msgs_received[dst].fetch_add(1, Ordering::Relaxed);
    stats.charge_kinds(&kinds, 1);
    if inboxes[dst].send(env).is_err() {
        stats.bytes_received[dst].fetch_sub(wire, Ordering::Relaxed);
        stats.msgs_received[dst].fetch_sub(1, Ordering::Relaxed);
        stats.charge_kinds(&kinds, -1);
    }
}

fn delivery_loop(
    rx: Receiver<Delayed>,
    inboxes: Vec<Sender<Envelope>>,
    stats: Arc<NetStats>,
    faults: Option<FaultCtl>,
) {
    let mut heap: BinaryHeap<Delayed> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        // lint: allow(determinism) -- delay-thread due-time check; ordering is pinned by the per-channel FIFO clamp, not by timing
        let now = Instant::now();
        while let Some(top) = heap.peek() {
            if top.deliver_at <= now {
                let d = heap.pop().expect("peeked");
                match &faults {
                    Some(f) => f.lock().on_deliver(d.env, d.incs.0, d.incs.1, now),
                    None => deliver(&inboxes, &stats, d.env),
                }
            } else {
                break;
            }
        }
        // Wait for the next due time or a new message.
        let wait = heap
            .peek()
            // lint: allow(determinism) -- delay-thread sleep sizing only; early/late wakeups cannot reorder deliveries
            .map(|d| d.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(d) => heap.push(d),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Every endpoint (and with it every inbox receiver) is
                // gone, so nothing in the heap can be received: drop the
                // backlog without counting it as delivered.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_delivery() {
        let (_net, eps) = SimNet::new(2, LatencyModel::ZERO);
        eps[0].send(MachineId(1), 7, Bytes::from_static(b"hi"));
        let env = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, MachineId(0));
        assert_eq!(env.kind, 7);
        assert_eq!(&env.payload[..], b"hi");
    }

    #[test]
    fn self_send_works_and_is_free() {
        let (net, eps) = SimNet::new(1, LatencyModel::ZERO);
        eps[0].send(MachineId(0), 1, Bytes::from_static(b"loop"));
        let env = eps[0].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.kind, 1);
        assert_eq!(net.stats().total_bytes(), 0);
        assert_eq!(net.stats().total_msgs(), 0);
    }

    #[test]
    fn stats_count_wire_bytes() {
        let (net, eps) = SimNet::new(3, LatencyModel::ZERO);
        eps[0].send(MachineId(1), 0, Bytes::from(vec![0u8; 100]));
        eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        let t0 = net.stats().machine(MachineId(0));
        let t1 = net.stats().machine(MachineId(1));
        assert_eq!(t0.bytes_sent, (100 + HEADER_BYTES) as u64);
        assert_eq!(t0.msgs_sent, 1);
        assert_eq!(t1.bytes_received, (100 + HEADER_BYTES) as u64);
        assert_eq!(t1.msgs_received, 1);
        assert_eq!(net.stats().machine(MachineId(2)), MachineTraffic::default());
    }

    #[test]
    fn broadcast_reaches_all_others() {
        let (_net, eps) = SimNet::new(4, LatencyModel::ZERO);
        eps[2].broadcast(9, &Bytes::from_static(b"x"));
        for (i, ep) in eps.iter().enumerate() {
            if i == 2 {
                assert_eq!(ep.try_recv().unwrap_err(), RecvError::Timeout);
            } else {
                let env = ep.recv_timeout(Duration::from_secs(1)).unwrap();
                assert_eq!(env.kind, 9);
                assert_eq!(env.src, MachineId(2));
            }
        }
    }

    #[test]
    fn delayed_delivery_takes_time_and_keeps_order() {
        let model = LatencyModel::fixed(Duration::from_millis(20));
        let (_net, eps) = SimNet::new(2, model);
        let start = Instant::now();
        for i in 0..5u8 {
            eps[0].send(MachineId(1), i as u16, Bytes::from(vec![i]));
        }
        for i in 0..5u16 {
            let env = eps[1].recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(env.kind, i, "FIFO preserved under equal latency");
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn small_message_cannot_overtake_large_one() {
        // Regression for the headline ISSUE 2 bug: with a bandwidth term
        // (and jitter), a 64 KiB message used to get a much later
        // deliver-at than the tiny messages sent right after it, so the
        // heap reordered the channel. The FIFO clamp forbids that.
        let model = LatencyModel {
            fixed: Duration::from_micros(100),
            per_kib: Duration::from_micros(50),
            jitter: Duration::from_micros(30),
        };
        let (_net, eps) = SimNet::new(2, model);
        eps[0].send(MachineId(1), 0, Bytes::from(vec![0u8; 64 * 1024]));
        for k in 1..=8u16 {
            eps[0].send(MachineId(1), k, Bytes::new());
        }
        for k in 0..=8u16 {
            let env = eps[1].recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(env.kind, k, "per-channel FIFO violated");
        }
    }

    #[test]
    fn link_serialization_charges_queueing_delay() {
        // Two 8 KiB messages back-to-back on a 1 ms/KiB link: the second
        // transmission starts only when the first ends, so it cannot be
        // delivered before ~16 ms even though its own tx time is 8 ms.
        let model = LatencyModel {
            fixed: Duration::ZERO,
            per_kib: Duration::from_millis(1),
            jitter: Duration::ZERO,
        };
        let (_net, eps) = SimNet::new(2, model);
        let payload = vec![0u8; 8 * 1024 - HEADER_BYTES];
        let start = Instant::now();
        eps[0].send(MachineId(1), 0, Bytes::from(payload.clone()));
        eps[0].send(MachineId(1), 1, Bytes::from(payload));
        let first = eps[1].recv_timeout(Duration::from_secs(10)).unwrap();
        let t_first = start.elapsed();
        let second = eps[1].recv_timeout(Duration::from_secs(10)).unwrap();
        let t_second = start.elapsed();
        assert_eq!((first.kind, second.kind), (0, 1));
        assert!(t_first >= Duration::from_millis(8), "first tx takes 8 ms, got {t_first:?}");
        assert!(t_second >= Duration::from_millis(16), "second queues behind first, got {t_second:?}");
    }

    #[test]
    fn channels_are_independent() {
        // Serialization is per-channel: a huge transfer to machine 1 must
        // not delay a tiny message to machine 2. Deterministic check (no
        // wall-clock upper bound): the tiny message arrives while the big
        // one — whose transmission takes ~2 s of simulated link time — is
        // still undelivered.
        let model = LatencyModel {
            fixed: Duration::ZERO,
            per_kib: Duration::from_millis(2),
            jitter: Duration::ZERO,
        };
        let (_net, eps) = SimNet::new(3, model);
        eps[0].send(MachineId(1), 0, Bytes::from(vec![0u8; 1024 * 1024])); // ~2 s tx
        eps[0].send(MachineId(2), 1, Bytes::new());
        let env = eps[2].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.kind, 1);
        assert_eq!(
            eps[1].try_recv().unwrap_err(),
            RecvError::Timeout,
            "big transfer should still be in flight: cross-channel head-of-line blocking"
        );
    }

    #[test]
    fn undelivered_messages_are_not_counted_received() {
        // ISSUE 2 satellite: receive counters are charged at delivery, so
        // a message still in the delay heap when the cluster shuts down
        // must not show up as received.
        let (net, mut eps) = SimNet::new(2, LatencyModel::fixed(Duration::from_millis(250)));
        let stats = Arc::clone(net.stats());
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(MachineId(1), 3, Bytes::from(vec![0u8; 64]));
        assert_eq!(stats.machine(MachineId(0)).msgs_sent, 1);
        drop(e1); // receiver gone before the 250 ms delivery fires
        drop(e0);
        drop(net); // joins the delivery thread
        let t1 = stats.machine(MachineId(1));
        assert_eq!(t1.msgs_received, 0, "in-flight message counted as received");
        assert_eq!(t1.bytes_received, 0);
    }

    #[test]
    fn delayed_receive_counters_match_after_delivery() {
        let (net, eps) = SimNet::new(2, LatencyModel::fixed(Duration::from_millis(1)));
        eps[0].send(MachineId(1), 0, Bytes::from(vec![0u8; 100]));
        eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
        // The delivery thread bumps the counters before the inbox handoff,
        // so they are visible once recv returns.
        let t1 = net.stats().machine(MachineId(1));
        assert_eq!(t1.msgs_received, 1);
        assert_eq!(t1.bytes_received, (100 + HEADER_BYTES) as u64);
    }

    #[test]
    fn per_kind_counters_charged_at_delivery() {
        let (net, eps) = SimNet::new(2, LatencyModel::ZERO);
        eps[0].send(MachineId(1), 7, Bytes::from(vec![0u8; 10]));
        eps[0].send(MachineId(1), 7, Bytes::from(vec![0u8; 20]));
        eps[0].send(MachineId(1), 9, Bytes::from(vec![0u8; 5]));
        for _ in 0..3 {
            eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        }
        let k7 = net.stats().kind(7);
        assert_eq!(k7.msgs, 2);
        assert_eq!(k7.bytes, (2 * HEADER_BYTES + 30) as u64);
        assert_eq!(net.stats().kind(9).msgs, 1);
        assert_eq!(net.stats().kind(42), KindTraffic::default());
        let rows = net.stats().by_kind();
        assert_eq!(rows.iter().map(|&(k, _)| k).collect::<Vec<_>>(), vec![7, 9]);
    }

    #[test]
    fn batch_envelopes_attribute_inner_kinds() {
        use crate::batch::K_BATCH;
        use crate::codec::put_uvarint;
        // Hand-rolled batch envelope: two sub-messages of kinds 3 and 4
        // (varint framing: 1-byte kind + 1-byte length each here).
        let mut buf = bytes::BytesMut::new();
        use bytes::BufMut;
        put_uvarint(&mut buf, 3);
        put_uvarint(&mut buf, 8);
        buf.put_slice(&[0u8; 8]);
        put_uvarint(&mut buf, 4);
        put_uvarint(&mut buf, 2);
        buf.put_slice(&[0u8; 2]);
        let (net, eps) = SimNet::new(2, LatencyModel::ZERO);
        eps[0].send(MachineId(1), K_BATCH, buf.freeze());
        eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(net.stats().kind(3).bytes, 2 + 8);
        assert_eq!(net.stats().kind(4).bytes, 2 + 2);
        assert_eq!(net.stats().kind(K_BATCH).bytes, HEADER_BYTES as u64);
        // Sub-message bytes + envelope header account for the whole wire.
        let total: u64 = net.stats().by_kind().iter().map(|(_, t)| t.bytes).sum();
        assert_eq!(total, net.stats().machine(MachineId(1)).bytes_received);
    }

    #[test]
    fn undelivered_kinds_are_rolled_back() {
        let (net, mut eps) = SimNet::new(2, LatencyModel::fixed(Duration::from_millis(250)));
        let stats = Arc::clone(net.stats());
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        e0.send(MachineId(1), 3, Bytes::from(vec![0u8; 64]));
        drop(e1);
        drop(e0);
        drop(net);
        assert_eq!(stats.kind(3), KindTraffic::default());
    }

    #[test]
    fn timeout_when_no_message() {
        let (_net, eps) = SimNet::new(2, LatencyModel::ZERO);
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn threads_can_converse() {
        let (_net, mut eps) = SimNet::new(2, LatencyModel::fixed(Duration::from_millis(1)));
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let h = std::thread::spawn(move || {
            // Echo server on machine 1.
            for _ in 0..10 {
                let env = e1.recv_timeout(Duration::from_secs(5)).unwrap();
                e1.send(env.src, env.kind + 1, env.payload);
            }
        });
        for i in 0..10u16 {
            e0.send(MachineId(1), i, Bytes::from_static(b"ping"));
            let reply = e0.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(reply.kind, i + 1);
        }
        h.join().unwrap();
    }
}
