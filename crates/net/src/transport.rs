//! The transport seam: one [`Endpoint`]/[`Net`] pair the engines compile
//! against, backed by either the deterministic in-process fabric
//! ([`SimNet`]) or real TCP between OS processes ([`TcpNet`]).
//!
//! This is the FoundationDB/MadSim shape: the simulation twin and the real
//! transport sit behind the same seam with identical semantics — per-channel
//! FIFO, the same [`RecvError`] meanings, free self-sends, delivery-charged
//! [`NetStats`] — so every engine protocol that is correct under chaos
//! testing on [`SimNet`] runs byte-for-byte unchanged over sockets. The
//! seam is enum-backed rather than a trait object so endpoints stay `Send`,
//! cheap to move into machine threads, and free of dynamic dispatch on the
//! per-message hot path.
//!
//! The seam is also where wall-clock *net-wait* is measured: every blocking
//! receive accumulates its elapsed time into a shared counter
//! ([`Endpoint::net_wait_counter`]), which the driver reads to split a
//! machine's wall clock into setup / compute / net-wait phases without the
//! engines knowing timing exists.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use graphlab_graph::MachineId;

use crate::cluster::{Envelope, NetStats, RecvError, SimEndpoint, SimNet};
use crate::fault::FaultEvent;
use crate::latency::LatencyModel;
use crate::tcp::{TcpConfig, TcpEndpoint, TcpNet};

/// Which fabric a run uses: the deterministic in-process simulator (with
/// its latency model and fault machinery) or real TCP between processes.
#[derive(Clone, Debug)]
pub enum Transport {
    /// In-process [`SimNet`] with the given latency model. Supports fault
    /// plans, chaos schedules and deterministic replay.
    Sim(LatencyModel),
    /// Real sockets via [`TcpNet`]. One OS process per machine; the config
    /// names this process's machine id and every peer's address.
    Tcp(TcpConfig),
}

impl Default for Transport {
    fn default() -> Self {
        Transport::Sim(LatencyModel::ZERO)
    }
}

impl Transport {
    /// True for the real-socket backend.
    pub fn is_tcp(&self) -> bool {
        matches!(self, Transport::Tcp(_))
    }
}

/// Owner handle of a running fabric, either backend.
pub enum Net {
    Sim(SimNet),
    Tcp(TcpNet),
}

impl Net {
    /// The fabric's traffic counters. For TCP this is one process's view
    /// (its own machine's rows); for Sim it is cluster-global.
    pub fn stats(&self) -> &Arc<NetStats> {
        match self {
            Net::Sim(n) => n.stats(),
            Net::Tcp(n) => n.stats(),
        }
    }

    /// The fault-injection trace. Always empty on TCP — chaos machinery is
    /// sim-only.
    pub fn fault_trace(&self) -> Vec<FaultEvent> {
        match self {
            Net::Sim(n) => n.fault_trace(),
            Net::Tcp(_) => Vec::new(),
        }
    }
}

enum Imp {
    Sim(SimEndpoint),
    Tcp(TcpEndpoint),
}

/// One machine's handle on the fabric, over either backend. This is the
/// type the engines and [`crate::batch::Batcher`] hold; everything observable
/// through it (ordering, errors, stats, self-send cost) behaves identically
/// on both backends.
pub struct Endpoint {
    imp: Imp,
    wait_nanos: Arc<AtomicU64>,
}

impl From<SimEndpoint> for Endpoint {
    fn from(e: SimEndpoint) -> Self {
        Endpoint { imp: Imp::Sim(e), wait_nanos: Arc::new(AtomicU64::new(0)) }
    }
}

impl From<TcpEndpoint> for Endpoint {
    fn from(e: TcpEndpoint) -> Self {
        Endpoint { imp: Imp::Tcp(e), wait_nanos: Arc::new(AtomicU64::new(0)) }
    }
}

impl Endpoint {
    /// This machine's id.
    pub fn id(&self) -> MachineId {
        match &self.imp {
            Imp::Sim(e) => e.id(),
            Imp::Tcp(e) => e.id(),
        }
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        match &self.imp {
            Imp::Sim(e) => e.num_machines(),
            Imp::Tcp(e) => e.num_machines(),
        }
    }

    /// The fabric's traffic counters (see [`Net::stats`] for scope).
    pub fn stats(&self) -> &Arc<NetStats> {
        match &self.imp {
            Imp::Sim(e) => e.stats(),
            Imp::Tcp(e) => e.stats(),
        }
    }

    /// Sends `payload` to `dst`. Self-sends are delivered locally and
    /// charged zero network bytes on both backends.
    pub fn send(&self, dst: MachineId, kind: u16, payload: Bytes) {
        match &self.imp {
            Imp::Sim(e) => e.send(dst, kind, payload),
            Imp::Tcp(e) => e.send(dst, kind, payload),
        }
    }

    /// Sends `payload` to every *other* machine.
    pub fn broadcast(&self, kind: u16, payload: &Bytes) {
        match &self.imp {
            Imp::Sim(e) => e.broadcast(kind, payload),
            Imp::Tcp(e) => e.broadcast(kind, payload),
        }
    }

    /// Whether the fault plan has scheduled this machine's death
    /// (`Some(imminent)`); `None` when no fault machinery is attached —
    /// always `None` on TCP.
    pub fn self_death(&self) -> Option<bool> {
        match &self.imp {
            Imp::Sim(e) => e.self_death(),
            Imp::Tcp(e) => e.self_death(),
        }
    }

    /// Blocking receive; elapsed time is charged to the net-wait counter.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        // lint: allow(determinism) -- net-wait phase accounting (EngineMetrics); measurement only
        let t0 = Instant::now();
        let r = match &self.imp {
            // lint: allow(blocking-recv) -- seam delegation to the backend's blessed blocking primitive (PR 5 termination audit)
            Imp::Sim(e) => e.recv(),
            // lint: allow(blocking-recv) -- seam delegation to the backend's blessed blocking primitive (PR 5 termination audit)
            Imp::Tcp(e) => e.recv(),
        };
        self.wait_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    /// Blocking receive with timeout; elapsed time (including timeouts) is
    /// charged to the net-wait counter.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        // lint: allow(determinism) -- net-wait phase accounting (EngineMetrics); measurement only
        let t0 = Instant::now();
        let r = match &self.imp {
            Imp::Sim(e) => e.recv_timeout(timeout),
            Imp::Tcp(e) => e.recv_timeout(timeout),
        };
        self.wait_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    /// Non-blocking receive; not charged as net-wait.
    pub fn try_recv(&self) -> Result<Envelope, RecvError> {
        match &self.imp {
            Imp::Sim(e) => e.try_recv(),
            Imp::Tcp(e) => e.try_recv(),
        }
    }

    /// Shared handle on the cumulative blocked-in-receive time, in
    /// nanoseconds. The driver clones this before handing the endpoint to
    /// an engine, then reads it afterwards to compute the net-wait phase.
    pub fn net_wait_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.wait_nanos)
    }

    /// Total time this endpoint has spent blocked in `recv`/`recv_timeout`.
    pub fn net_wait(&self) -> Duration {
        Duration::from_nanos(self.wait_nanos.load(Ordering::Relaxed))
    }
}
