//! Binary encoding of everything that crosses a machine boundary.
//!
//! All cross-machine payloads — lock chain requests, ghost synchronisation
//! deltas, scheduling forwards, sync-operation partials, snapshot records —
//! are encoded through this trait into [`bytes::Bytes`] buffers. This is
//! deliberate (DESIGN.md D1): it forces the engines to behave like a real
//! distributed system and makes the byte counters truthful.
//!
//! The format is little-endian and fixed-width for scalars; collections are
//! a `u32` length prefix followed by elements. (The atom journal in
//! `graphlab-atoms` uses a separate varint format tuned for on-disk size.)

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphlab_graph::{AtomId, EdgeId, MachineId, VertexId};

/// A type that can serialise itself to bytes and back.
///
/// Implementations must roundtrip: `decode(encode(x)) == x`.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value from the front of `buf`, consuming its bytes.
    ///
    /// Returns `None` when the buffer does not hold a valid encoding (short
    /// reads included).
    fn decode(buf: &mut Bytes) -> Option<Self>;
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_bytes<T: Codec>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decodes a value from a buffer, requiring full consumption.
pub fn decode_from<T: Codec>(bytes: Bytes) -> Option<T> {
    let mut bytes = bytes;
    let v = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return None;
    }
    Some(v)
}

macro_rules! impl_codec_scalar {
    ($t:ty, $put:ident, $get:ident, $len:expr) => {
        impl Codec for $t {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            #[inline]
            fn decode(buf: &mut Bytes) -> Option<Self> {
                if buf.remaining() < $len {
                    return None;
                }
                Some(buf.$get())
            }
        }
    };
}

impl_codec_scalar!(u8, put_u8, get_u8, 1);
impl_codec_scalar!(u16, put_u16_le, get_u16_le, 2);
impl_codec_scalar!(u32, put_u32_le, get_u32_le, 4);
impl_codec_scalar!(u64, put_u64_le, get_u64_le, 8);
impl_codec_scalar!(i64, put_i64_le, get_i64_le, 8);
impl_codec_scalar!(f32, put_f32_le, get_f32_le, 4);
impl_codec_scalar!(f64, put_f64_le, get_f64_le, 8);

impl Codec for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for usize {
    fn encode(&self, buf: &mut BytesMut) {
        debug_assert!(*self <= u64::MAX as usize);
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u64::decode(buf).map(|v| v as usize)
    }
}

impl Codec for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Option<Self> {
        Some(())
    }
}

impl Codec for VertexId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(VertexId)
    }
}

impl Codec for EdgeId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(EdgeId)
    }
}

impl Codec for AtomId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(AtomId)
    }
}

impl Codec for MachineId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u16::decode(buf).map(MachineId)
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return None;
        }
        let raw = buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Codec for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = u32::decode(buf)? as usize;
        if buf.remaining() < len {
            return None;
        }
        Some(buf.copy_to_bytes(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_to_bytes(&v);
        let dec: T = decode_from(enc).expect("decode");
        assert_eq!(dec, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(65535u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(12345usize);
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(VertexId(7));
        roundtrip(EdgeId(u32::MAX));
        roundtrip(AtomId(3));
        roundtrip(MachineId(12));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(9.5f64));
        roundtrip(Option::<u32>::None);
        roundtrip((VertexId(1), 2.5f64));
        roundtrip((MachineId(1), VertexId(2), 3u64));
        roundtrip("hello GraphLab".to_string());
        roundtrip(String::new());
        roundtrip(Bytes::from_static(b"raw"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        1u32.encode(&mut buf);
        0u8.encode(&mut buf);
        assert!(decode_from::<u32>(buf.freeze()).is_none());
    }

    #[test]
    fn short_read_rejected() {
        let enc = encode_to_bytes(&1u64);
        let short = enc.slice(0..4);
        assert!(decode_from::<u64>(short).is_none());
    }

    #[test]
    fn invalid_bool_rejected() {
        let bytes = Bytes::from_static(&[2]);
        assert!(decode_from::<bool>(bytes).is_none());
    }

    #[test]
    fn nested_vec_roundtrip() {
        roundtrip(vec![vec![1u16, 2], vec![], vec![3]]);
    }
}
