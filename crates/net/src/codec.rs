//! Binary encoding of everything that crosses a machine boundary.
//!
//! All cross-machine payloads — lock chain requests, ghost synchronisation
//! deltas, scheduling forwards, sync-operation partials, snapshot records —
//! are encoded through this trait into [`bytes::Bytes`] buffers. This is
//! deliberate (DESIGN.md D1): it forces the engines to behave like a real
//! distributed system and makes the byte counters truthful.
//!
//! # Wire format (v2, ISSUE 3)
//!
//! Integers are **LEB128 varints**: `u16`/`u32`/`u64`/`usize` encode 7 bits
//! per byte, low group first, continuation in the high bit; `i64` is
//! zig-zag-mapped first so small magnitudes of either sign stay short.
//! Message traffic is dominated by small ids, versions and lengths, so this
//! roughly halves control-message size versus the old fixed-width format.
//! `u8`, `bool`, `f32` and `f64` remain fixed-width. Collections are a
//! varint length prefix followed by elements. Sorted id sequences can
//! additionally be gap-encoded with [`put_id_deltas`]/[`get_id_deltas`].
//! (The atom journal in `graphlab-atoms` uses a separate varint format
//! tuned for on-disk size.)

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphlab_graph::{AtomId, EdgeId, MachineId, VertexId};

/// A type that can serialise itself to bytes and back.
///
/// Implementations must roundtrip: `decode(encode(x)) == x`.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value from the front of `buf`, consuming its bytes.
    ///
    /// Returns `None` when the buffer does not hold a valid encoding (short
    /// reads included).
    fn decode(buf: &mut Bytes) -> Option<Self>;
}

/// Encodes a value into a fresh buffer.
pub fn encode_to_bytes<T: Codec>(value: &T) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.freeze()
}

/// Decodes a value from a buffer, requiring full consumption.
pub fn decode_from<T: Codec>(bytes: Bytes) -> Option<T> {
    let mut bytes = bytes;
    let v = T::decode(&mut bytes)?;
    if bytes.has_remaining() {
        return None;
    }
    Some(v)
}

// ---- varint primitives ----

/// Appends `v` as an LEB128 varint (1–10 bytes; values < 128 take one).
#[inline]
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

/// Reads an LEB128 varint from the front of `buf`. Returns `None` on a
/// short read or a >64-bit overflow.
#[inline]
pub fn get_uvarint(buf: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return None;
        }
        let b = buf.get_u8();
        if shift == 63 && (b & 0x7f) > 1 {
            return None; // would overflow the 64th bit
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zig-zag maps a signed value so small magnitudes varint-encode short.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a **non-decreasing** sequence of `n` u32 ids as varint gaps
/// from the previous id (first gap is from 0). Sorted scope-vertex and
/// edge-id lists shrink to ~1 byte per id this way.
#[inline]
pub fn put_id_deltas(buf: &mut BytesMut, n: usize, ids: impl Iterator<Item = u32>) {
    put_uvarint(buf, n as u64);
    let mut prev = 0u32;
    for id in ids {
        debug_assert!(id >= prev, "id sequence must be non-decreasing");
        put_uvarint(buf, (id - prev) as u64);
        prev = id;
    }
}

/// Decodes a gap-encoded id sequence written by [`put_id_deltas`].
pub fn get_id_deltas(buf: &mut Bytes) -> Option<Vec<u32>> {
    let n = get_uvarint(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    let mut prev = 0u64;
    for _ in 0..n {
        let gap = get_uvarint(buf)?;
        let id = prev + gap;
        if id > u32::MAX as u64 {
            return None;
        }
        out.push(id as u32);
        prev = id;
    }
    Some(out)
}

// ---- scalar impls ----

macro_rules! impl_codec_fixed {
    ($t:ty, $put:ident, $get:ident, $len:expr) => {
        impl Codec for $t {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
            #[inline]
            fn decode(buf: &mut Bytes) -> Option<Self> {
                if buf.remaining() < $len {
                    return None;
                }
                Some(buf.$get())
            }
        }
    };
}

impl_codec_fixed!(u8, put_u8, get_u8, 1);
impl_codec_fixed!(f32, put_f32_le, get_f32_le, 4);
impl_codec_fixed!(f64, put_f64_le, get_f64_le, 8);

macro_rules! impl_codec_uvarint {
    ($t:ty) => {
        impl Codec for $t {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                put_uvarint(buf, *self as u64);
            }
            #[inline]
            fn decode(buf: &mut Bytes) -> Option<Self> {
                let v = get_uvarint(buf)?;
                <$t>::try_from(v).ok()
            }
        }
    };
}

impl_codec_uvarint!(u16);
impl_codec_uvarint!(u32);
impl_codec_uvarint!(u64);
impl_codec_uvarint!(usize);

impl Codec for i64 {
    #[inline]
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, zigzag(*self));
    }
    #[inline]
    fn decode(buf: &mut Bytes) -> Option<Self> {
        get_uvarint(buf).map(unzigzag)
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for () {
    fn encode(&self, _buf: &mut BytesMut) {}
    fn decode(_buf: &mut Bytes) -> Option<Self> {
        Some(())
    }
}

impl Codec for VertexId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(VertexId)
    }
}

impl Codec for EdgeId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(EdgeId)
    }
}

impl Codec for AtomId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u32::decode(buf).map(AtomId)
    }
}

impl Codec for MachineId {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        u16::decode(buf).map(MachineId)
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = get_uvarint(buf)? as usize;
        if buf.remaining() < len {
            return None;
        }
        let raw = buf.copy_to_bytes(len);
        String::from_utf8(raw.to_vec()).ok()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = get_uvarint(buf)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Some(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        match u8::decode(buf)? {
            0 => Some(None),
            1 => Some(Some(T::decode(buf)?)),
            _ => None,
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Codec for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.len() as u64);
        buf.put_slice(self);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let len = get_uvarint(buf)? as usize;
        if buf.remaining() < len {
            return None;
        }
        Some(buf.copy_to_bytes(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_to_bytes(&v);
        let dec: T = decode_from(enc).expect("decode");
        assert_eq!(dec, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(65535u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(i64::MIN);
        roundtrip(i64::MAX);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(12345usize);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_uvarint(&mut b), Some(v));
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn varint_lengths_match_leb128() {
        let cases = [(0u64, 1usize), (127, 1), (128, 2), (16383, 2), (16384, 3), (u64::MAX, 10)];
        for (v, len) in cases {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf.len(), len, "value {v}");
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let bytes = Bytes::from(vec![0x80u8; 11]);
        let mut b = bytes;
        assert_eq!(get_uvarint(&mut b), None);
        // A 10-byte encoding whose last group sets bits beyond the 64th.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        let mut b = Bytes::from(overflow);
        assert_eq!(get_uvarint(&mut b), None);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn id_deltas_roundtrip() {
        for ids in [vec![], vec![0u32], vec![0, 0, 1, 5, 5, 100], vec![7, 8, 1000, u32::MAX]] {
            let mut buf = BytesMut::new();
            put_id_deltas(&mut buf, ids.len(), ids.iter().copied());
            let mut b = buf.freeze();
            assert_eq!(get_id_deltas(&mut b), Some(ids));
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn id_deltas_overflow_rejected() {
        // Two max gaps exceed u32.
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 2);
        put_uvarint(&mut buf, u32::MAX as u64);
        put_uvarint(&mut buf, 1);
        let mut b = buf.freeze();
        assert_eq!(get_id_deltas(&mut b), None);
    }

    #[test]
    fn ids_roundtrip() {
        roundtrip(VertexId(7));
        roundtrip(EdgeId(u32::MAX));
        roundtrip(AtomId(3));
        roundtrip(MachineId(12));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(9.5f64));
        roundtrip(Option::<u32>::None);
        roundtrip((VertexId(1), 2.5f64));
        roundtrip((MachineId(1), VertexId(2), 3u64));
        roundtrip("hello GraphLab".to_string());
        roundtrip(String::new());
        roundtrip(Bytes::from_static(b"raw"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        1u32.encode(&mut buf);
        0u8.encode(&mut buf);
        assert!(decode_from::<u32>(buf.freeze()).is_none());
    }

    #[test]
    fn short_read_rejected() {
        let enc = encode_to_bytes(&u64::MAX);
        let short = enc.slice(0..4);
        assert!(decode_from::<u64>(short).is_none());
    }

    #[test]
    fn narrow_type_range_enforced() {
        // A varint holding a value > u16::MAX must not decode as u16.
        let enc = encode_to_bytes(&(u16::MAX as u32 + 1));
        assert!(decode_from::<u16>(enc).is_none());
        let enc = encode_to_bytes(&(u32::MAX as u64 + 1));
        assert!(decode_from::<u32>(enc).is_none());
    }

    #[test]
    fn invalid_bool_rejected() {
        let bytes = Bytes::from_static(&[2]);
        assert!(decode_from::<bool>(bytes).is_none());
    }

    #[test]
    fn nested_vec_roundtrip() {
        roundtrip(vec![vec![1u16, 2], vec![], vec![3]]);
    }

    #[test]
    fn small_ids_are_one_byte() {
        // The whole point of the v2 format: typical ids/versions are tiny.
        assert_eq!(encode_to_bytes(&VertexId(90)).len(), 1);
        assert_eq!(encode_to_bytes(&MachineId(7)).len(), 1);
        assert_eq!(encode_to_bytes(&5u64).len(), 1);
    }
}
