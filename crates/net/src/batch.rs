//! Message batching/coalescing on top of the fabric (§4.2.2, and the
//! arXiv version's description of aggregating small lock/schedule RPCs).
//!
//! The engines' hot path is dominated by small control messages — lock
//! chain hops, grants, schedule requests, write-backs — each paying
//! [`crate::cluster::HEADER_BYTES`] of framing and one trip through the
//! delivery heap. A [`Batcher`] wraps an [`Endpoint`] and coalesces
//! messages bound for the same machine into one envelope:
//!
//! - `send` appends to a per-destination queue and flushes it when the
//!   [`BatchPolicy`] thresholds (message count or payload bytes) are hit;
//! - oversized payloads flush their queue first (order!) and go out
//!   unbatched;
//! - every *blocking* receive flushes all queues, so a machine never
//!   sleeps on replies to requests it has not put on the wire yet —
//!   batching can therefore never deadlock an engine;
//! - received [`K_BATCH`] envelopes are transparently unpacked, in order,
//!   into the individual messages.
//!
//! Because each queue is FIFO and the fabric guarantees per-channel FIFO
//! delivery of the batch envelopes themselves, routing *all* traffic to a
//! destination through the batcher preserves the exact per-channel order
//! the unbatched engines relied on.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphlab_graph::MachineId;

use crate::cluster::{Endpoint, Envelope, RecvError};

/// Reserved message kind for a batch envelope. Application tag spaces must
/// not use it (the engines use `1..=39`; see `graphlab-core::messages`).
pub const K_BATCH: u16 = u16::MAX;

/// Per-submessage framing inside a batch envelope: kind (u16) + len (u32).
pub const SUB_HEADER_BYTES: usize = 6;

/// Flush policy for a [`Batcher`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Master switch; `false` makes the batcher a transparent pass-through.
    pub enabled: bool,
    /// Flush a destination queue once its buffered bytes reach this bound;
    /// payloads at least this large bypass batching entirely.
    pub max_bytes: usize,
    /// Flush a destination queue once it holds this many messages.
    pub max_msgs: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { enabled: true, max_bytes: 16 * 1024, max_msgs: 64 }
    }
}

impl BatchPolicy {
    /// A pass-through policy: every message goes out individually
    /// (ablation / traffic-accounting baselines).
    pub fn disabled() -> Self {
        BatchPolicy { enabled: false, ..BatchPolicy::default() }
    }
}

struct Queue {
    buf: BytesMut,
    count: usize,
}

/// Counters describing what the batcher did (diagnostics; the wire-level
/// truth lives in [`crate::cluster::NetStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Messages that left the machine inside a multi-message batch
    /// envelope (a queued message whose flush unwraps it solo moves to
    /// `unbatched` instead).
    pub queued: u64,
    /// Batch envelopes flushed (with ≥ 2 messages inside).
    pub batches: u64,
    /// Messages sent individually (pass-through, oversized, self-sends,
    /// or single-message flushes).
    pub unbatched: u64,
}

/// A batching send/receive façade over an [`Endpoint`].
pub struct Batcher {
    ep: Endpoint,
    policy: BatchPolicy,
    queues: Vec<Queue>,
    /// Messages unpacked from a received batch, drained before the socket.
    pending: VecDeque<Envelope>,
    counters: BatchCounters,
}

impl Batcher {
    /// Wraps `ep` with the given flush policy.
    pub fn new(ep: Endpoint, policy: BatchPolicy) -> Self {
        let n = ep.num_machines();
        Batcher {
            ep,
            policy,
            queues: (0..n).map(|_| Queue { buf: BytesMut::new(), count: 0 }).collect(),
            pending: VecDeque::new(),
            counters: BatchCounters::default(),
        }
    }

    /// The wrapped endpoint's machine id.
    pub fn id(&self) -> MachineId {
        self.ep.id()
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.ep.num_machines()
    }

    /// Batching diagnostics so far.
    pub fn counters(&self) -> BatchCounters {
        self.counters
    }

    /// Queues (or sends) `payload` to `dst`. Messages to one destination
    /// are delivered in send order regardless of how they are packed.
    pub fn send(&mut self, dst: MachineId, kind: u16, payload: Bytes) {
        debug_assert!(kind != K_BATCH, "K_BATCH is reserved for the transport");
        if !self.policy.enabled || dst == self.ep.id() {
            self.counters.unbatched += 1;
            self.ep.send(dst, kind, payload);
            return;
        }
        if payload.len() >= self.policy.max_bytes {
            // Oversized: drain everything queued ahead of it, then send
            // unbatched so the big blob does not get copied again.
            self.flush(dst);
            self.counters.unbatched += 1;
            self.ep.send(dst, kind, payload);
            return;
        }
        let q = &mut self.queues[dst.index()];
        q.buf.put_u16_le(kind);
        q.buf.put_u32_le(payload.len() as u32);
        q.buf.put_slice(&payload);
        q.count += 1;
        self.counters.queued += 1;
        if q.count >= self.policy.max_msgs || q.buf.len() >= self.policy.max_bytes {
            self.flush(dst);
        }
    }

    /// Sends `payload` to every *other* machine (through the queues).
    pub fn broadcast(&mut self, kind: u16, payload: &Bytes) {
        for i in 0..self.num_machines() {
            let dst = MachineId::from(i);
            if dst != self.ep.id() {
                self.send(dst, kind, payload.clone());
            }
        }
    }

    /// Puts everything queued for `dst` on the wire.
    pub fn flush(&mut self, dst: MachineId) {
        let q = &mut self.queues[dst.index()];
        if q.count == 0 {
            return;
        }
        let count = q.count;
        q.count = 0;
        let mut buf = std::mem::take(&mut q.buf).freeze();
        // Right-size the replacement up front so the next batch does not
        // re-grow from zero through repeated doublings.
        q.buf.reserve(self.policy.max_bytes);
        if count == 1 {
            // A batch of one is pure overhead: unwrap it.
            let kind = buf.get_u16_le();
            let len = buf.get_u32_le() as usize;
            let payload = buf.copy_to_bytes(len);
            self.counters.unbatched += 1;
            self.counters.queued -= 1;
            self.ep.send(dst, kind, payload);
        } else {
            self.counters.batches += 1;
            self.ep.send(dst, K_BATCH, buf);
        }
    }

    /// Flushes every destination queue.
    pub fn flush_all(&mut self) {
        for i in 0..self.queues.len() {
            self.flush(MachineId::from(i));
        }
    }

    /// Blocking receive with timeout. Flushes all queues before actually
    /// waiting on the socket — a machine about to sleep must have its
    /// outgoing requests on the wire. Returning an already-available
    /// message (pending batch contents or a non-empty inbox) does not
    /// flush, so replies generated across a burst keep coalescing; the
    /// size/count thresholds bound how long they can sit.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Envelope, RecvError> {
        if let Some(env) = self.pending.pop_front() {
            return Ok(env);
        }
        match self.ep.try_recv() {
            Ok(env) => return Ok(self.unpack_first(env)),
            Err(RecvError::Disconnected) => return Err(RecvError::Disconnected),
            Err(RecvError::Timeout) => {}
        }
        self.flush_all();
        let env = self.ep.recv_timeout(timeout)?;
        Ok(self.unpack_first(env))
    }

    /// Non-blocking receive (does not flush: callers drain bursts between
    /// blocking receives, which do).
    pub fn try_recv(&mut self) -> Result<Envelope, RecvError> {
        if let Some(env) = self.pending.pop_front() {
            return Ok(env);
        }
        let env = self.ep.try_recv()?;
        Ok(self.unpack_first(env))
    }

    fn unpack_first(&mut self, env: Envelope) -> Envelope {
        if env.kind != K_BATCH {
            return env;
        }
        debug_assert!(self.pending.is_empty());
        let mut buf = env.payload;
        while buf.has_remaining() {
            let kind = buf.get_u16_le();
            let len = buf.get_u32_le() as usize;
            let payload = buf.copy_to_bytes(len);
            self.pending.push_back(Envelope { src: env.src, dst: env.dst, kind, payload });
        }
        self.pending.pop_front().expect("batch envelope holds at least one message")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimNet;
    use crate::latency::LatencyModel;

    fn pair(policy: BatchPolicy) -> (SimNet, Batcher, Batcher) {
        let (net, mut eps) = SimNet::new(2, LatencyModel::ZERO);
        let b1 = Batcher::new(eps.pop().unwrap(), policy);
        let b0 = Batcher::new(eps.pop().unwrap(), policy);
        (net, b0, b1)
    }

    #[test]
    fn coalesces_and_preserves_order() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::default());
        for k in 0..10u16 {
            b0.send(MachineId(1), k, Bytes::from(vec![k as u8; 8]));
        }
        b0.flush_all();
        for k in 0..10u16 {
            let env = b1.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.kind, k);
            assert_eq!(&env.payload[..], &vec![k as u8; 8][..]);
            assert_eq!(env.src, MachineId(0));
        }
        // All ten rode in one envelope.
        assert_eq!(net.stats().total_msgs(), 1);
        assert_eq!(b0.counters().batches, 1);
    }

    #[test]
    fn count_threshold_triggers_flush() {
        let policy = BatchPolicy { max_msgs: 3, ..BatchPolicy::default() };
        let (net, mut b0, _b1) = pair(policy);
        for k in 0..3u16 {
            b0.send(MachineId(1), k, Bytes::new());
        }
        assert_eq!(net.stats().total_msgs(), 1, "auto-flush at max_msgs");
    }

    #[test]
    fn byte_threshold_triggers_flush() {
        let policy = BatchPolicy { max_bytes: 100, ..BatchPolicy::default() };
        let (net, mut b0, _b1) = pair(policy);
        b0.send(MachineId(1), 0, Bytes::from(vec![0u8; 60]));
        assert_eq!(net.stats().total_msgs(), 0, "still buffered");
        b0.send(MachineId(1), 1, Bytes::from(vec![0u8; 60]));
        assert_eq!(net.stats().total_msgs(), 1, "auto-flush at max_bytes");
    }

    #[test]
    fn oversized_payload_flushes_queue_first() {
        let policy = BatchPolicy { max_bytes: 64, ..BatchPolicy::default() };
        let (_net, mut b0, mut b1) = pair(policy);
        b0.send(MachineId(1), 0, Bytes::from(vec![1u8; 8]));
        b0.send(MachineId(1), 1, Bytes::from(vec![2u8; 256])); // oversized
        b0.flush_all();
        // Order preserved: queued small message first, then the big one.
        let a = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((a.kind, b.kind), (0, 1));
        assert_eq!(b.payload.len(), 256);
    }

    #[test]
    fn single_message_flush_is_unwrapped() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::default());
        b0.send(MachineId(1), 7, Bytes::from_static(b"solo"));
        b0.flush_all();
        let env = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.kind, 7);
        // No K_BATCH framing was paid for a lone message.
        assert_eq!(
            net.stats().machine(MachineId(0)).bytes_sent,
            (crate::cluster::HEADER_BYTES + 4) as u64
        );
    }

    #[test]
    fn disabled_policy_is_pass_through() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::disabled());
        for k in 0..5u16 {
            b0.send(MachineId(1), k, Bytes::new());
        }
        assert_eq!(net.stats().total_msgs(), 5);
        for k in 0..5u16 {
            assert_eq!(b1.recv_timeout(Duration::from_secs(1)).unwrap().kind, k);
        }
    }

    #[test]
    fn self_sends_bypass_queues() {
        let (_net, mut b0, _b1) = pair(BatchPolicy::default());
        b0.send(MachineId(0), 9, Bytes::from_static(b"me"));
        let env = b0.try_recv().unwrap();
        assert_eq!(env.kind, 9);
    }

    #[test]
    fn blocking_recv_flushes_pending_sends() {
        // Two batchers ping-pong: each send sits in a queue until the
        // sender blocks in recv_timeout — no explicit flush calls needed.
        let (_net, mut b0, mut b1) = pair(BatchPolicy::default());
        let h = std::thread::spawn(move || {
            for _ in 0..5 {
                let env = b1.recv_timeout(Duration::from_secs(5)).unwrap();
                b1.send(env.src, env.kind + 100, env.payload);
            }
            // Final replies flush when this side blocks one more time.
            let _ = b1.recv_timeout(Duration::from_millis(10));
        });
        for k in 0..5u16 {
            b0.send(MachineId(1), k, Bytes::from_static(b"ping"));
            let reply = b0.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(reply.kind, k + 100);
        }
        h.join().unwrap();
    }
}
