//! Message batching/coalescing on top of the fabric (§4.2.2, and the
//! arXiv version's description of aggregating small lock/schedule RPCs).
//!
//! The engines' hot path is dominated by small control messages — lock
//! chain hops, grants, schedule requests, write-backs — each paying
//! [`crate::cluster::HEADER_BYTES`] of framing and one trip through the
//! delivery heap. A [`Batcher`] wraps an [`Endpoint`] and coalesces
//! messages bound for the same machine into one envelope:
//!
//! - `send` appends to a per-destination queue and flushes it when the
//!   [`BatchPolicy`] thresholds (message count or payload bytes) are hit;
//! - oversized payloads flush their queue first (order!) and go out
//!   unbatched;
//! - every *blocking* receive flushes all queues, so a machine never
//!   sleeps on replies to requests it has not put on the wire yet —
//!   batching can therefore never deadlock an engine;
//! - received [`K_BATCH`] envelopes are transparently unpacked, in order,
//!   into the individual messages;
//! - when [`BatchPolicy::compress`] is on, outgoing wire payloads at least
//!   [`BatchPolicy::compress_min`] bytes long are run through the LZSS pass
//!   in [`crate::compress`] and shipped under the reserved [`K_ZIP`] kind
//!   (original kind + compressed body), kept only when it actually
//!   shrinks; receivers decompress transparently before unpacking.
//!
//! Because each queue is FIFO and the fabric guarantees per-channel FIFO
//! delivery of the batch envelopes themselves, routing *all* traffic to a
//! destination through the batcher preserves the exact per-channel order
//! the unbatched engines relied on. Compression wraps whole envelopes and
//! so cannot reorder anything either.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphlab_graph::MachineId;

use crate::cluster::{Envelope, RecvError};
use crate::fault::{DownMsg, K_DOWN};
use crate::lease::{LeaseConfig, LeaseState, K_LEASE, LEASE_MASTER};
use crate::transport::Endpoint;
use crate::codec::{encode_to_bytes, get_uvarint, put_uvarint};
use crate::compress;

/// Reserved message kind for a batch envelope. Application tag spaces must
/// not use it (the engines use `1..=39`; see `graphlab-core::messages`).
pub const K_BATCH: u16 = u16::MAX;

/// Reserved message kind for a compressed envelope: payload is the
/// original kind (`u16` LE) followed by an LZSS stream
/// ([`crate::compress`]) of the original payload.
pub const K_ZIP: u16 = u16::MAX - 1;

/// Per-submessage framing inside a batch envelope: varint kind + varint
/// length (2 bytes for typical engine messages, up to this bound).
pub const SUB_HEADER_MAX_BYTES: usize = 3 + 5;

/// Flush policy for a [`Batcher`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Master switch; `false` makes the batcher a transparent pass-through.
    pub enabled: bool,
    /// Flush a destination queue once its buffered bytes reach this bound;
    /// payloads at least this large bypass batching entirely.
    pub max_bytes: usize,
    /// Flush a destination queue once it holds this many messages.
    pub max_msgs: usize,
    /// Compress outgoing wire payloads (batch envelopes and oversized
    /// singles) with the LZSS pass when they reach `compress_min` bytes.
    pub compress: bool,
    /// Minimum wire payload size worth compressing.
    pub compress_min: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            enabled: true,
            max_bytes: 16 * 1024,
            max_msgs: 64,
            compress: true,
            compress_min: 96,
        }
    }
}

impl BatchPolicy {
    /// A pass-through policy: every message goes out individually and raw
    /// (ablation / traffic-accounting baselines).
    pub fn disabled() -> Self {
        BatchPolicy { enabled: false, compress: false, ..BatchPolicy::default() }
    }

    /// Default batching thresholds without the compression pass (wire
    /// format ablation arm).
    pub fn uncompressed() -> Self {
        BatchPolicy { compress: false, ..BatchPolicy::default() }
    }
}

struct Queue {
    buf: BytesMut,
    count: usize,
}

/// Counters describing what the batcher did (diagnostics; the wire-level
/// truth lives in [`crate::cluster::NetStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchCounters {
    /// Messages that left the machine inside a multi-message batch
    /// envelope (a queued message whose flush unwraps it solo moves to
    /// `unbatched` instead).
    pub queued: u64,
    /// Batch envelopes flushed (with ≥ 2 messages inside).
    pub batches: u64,
    /// Messages sent individually (pass-through, oversized, self-sends,
    /// or single-message flushes).
    pub unbatched: u64,
    /// Wire envelopes that went out compressed ([`K_ZIP`]).
    pub compressed: u64,
    /// Payload bytes fed into the compressor for envelopes it won on.
    pub compress_in: u64,
    /// Wire payload bytes after compression (incl. the 2-byte kind tag).
    pub compress_out: u64,
}

/// A batching send/receive façade over an [`Endpoint`].
pub struct Batcher {
    ep: Endpoint,
    policy: BatchPolicy,
    queues: Vec<Queue>,
    /// Messages unpacked from a received batch, drained before the socket.
    pending: VecDeque<Envelope>,
    counters: BatchCounters,
    /// Lease-based failure detection ([`crate::lease`]), when enabled:
    /// received envelopes refresh the sender's lease, blocking waits are
    /// sliced so heartbeats go out and the master's expiry scan runs, and
    /// an expired lease synthesizes the same `K_DOWN` the fault fabric's
    /// oracle would have delivered.
    lease: Option<LeaseState>,
    /// Machines known *permanently* dead: traffic to them is dropped at
    /// the wire hop. On the sim fabric the drop merely mirrors what the
    /// fabric does anyway; on TCP it is what keeps a survivor from
    /// stalling in 2-second redials towards a vanished process. Survives
    /// [`Batcher::clear`] — permanent deaths are cluster-durable facts.
    fenced: Vec<bool>,
}

impl Batcher {
    /// Wraps `ep` with the given flush policy.
    pub fn new(ep: Endpoint, policy: BatchPolicy) -> Self {
        let n = ep.num_machines();
        Batcher {
            ep,
            policy,
            queues: (0..n).map(|_| Queue { buf: BytesMut::new(), count: 0 }).collect(),
            pending: VecDeque::new(),
            counters: BatchCounters::default(),
            lease: None,
            fenced: vec![false; n],
        }
    }

    /// Engine hook: `machine` is *permanently* dead — drop all further
    /// traffic to it at the wire hop (restartable kills must NOT be
    /// fenced: the reborn machine needs the post-rollback traffic).
    pub fn fence(&mut self, machine: u16) {
        self.fenced[machine as usize] = true;
    }

    /// Turns on lease-based failure detection with the given policy. The
    /// master (machine 0) starts tracking every machine's lease; workers
    /// start heartbeating when idle. See [`crate::lease`].
    pub fn enable_lease(&mut self, cfg: LeaseConfig) {
        let me = self.ep.id().index() as u16;
        self.lease = Some(LeaseState::new(me, self.ep.num_machines(), cfg));
    }

    /// Whether lease detection is on.
    pub fn lease_enabled(&self) -> bool {
        self.lease.is_some()
    }

    /// Engine hook: a death was observed (any detector). Fences the dead
    /// machine out of the lease table so the detector never re-declares
    /// it, and keeps the era monotone.
    pub fn lease_note_death(&mut self, machine: u16, era: u32) {
        if let Some(l) = &mut self.lease {
            l.observe_death(machine as usize, era);
        }
    }

    /// Engine hook: a restart was observed — the machine leases afresh.
    pub fn lease_note_up(&mut self, machine: u16, era: u32) {
        if let Some(l) = &mut self.lease {
            l.observe_up(machine as usize, era);
        }
    }

    /// Lease bookkeeping, run between wait slices: workers send an
    /// explicit heartbeat when idle towards the master past half the
    /// period; the master declares expired leases dead and broadcasts the
    /// fabric-shaped `K_DOWN` (restart = false, next era) to everyone it
    /// still believes alive — itself included, so its own engine takes
    /// the same path as the survivors.
    fn lease_tick(&mut self) {
        let Batcher { ep, lease, fenced, .. } = self;
        let Some(l) = lease else { return };
        if l.is_master() {
            while let Some((victim, era)) = l.expired() {
                // A lease expiry is always a permanent declaration.
                fenced[victim as usize] = true;
                let down = DownMsg { machine: victim, restart: false, era };
                let payload = encode_to_bytes(&down);
                for j in 0..ep.num_machines() {
                    if j != victim as usize && !l.is_dead(j) {
                        // lint: allow(fenced-send) -- this IS the fencing machinery: the victim was masked above and the loop skips it and the already-dead
                        ep.send(MachineId::from(j), K_DOWN, payload.clone());
                    }
                }
            }
        } else if l.heartbeat_due() {
            // lint: allow(fenced-send) -- liveness signal: a heartbeat must never sit in a batch queue, and the lease master is the failure detector itself
            ep.send(MachineId::from(LEASE_MASTER), K_LEASE, encode_to_bytes(&l.heartbeat()));
            l.note_sent_to_master();
        }
    }

    /// The wrapped endpoint's machine id.
    pub fn id(&self) -> MachineId {
        self.ep.id()
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.ep.num_machines()
    }

    /// Batching diagnostics so far.
    pub fn counters(&self) -> BatchCounters {
        self.counters
    }

    /// Queues (or sends) `payload` to `dst`. Messages to one destination
    /// are delivered in send order regardless of how they are packed.
    pub fn send(&mut self, dst: MachineId, kind: u16, payload: Bytes) {
        debug_assert!(
            kind != K_BATCH && kind != K_ZIP,
            "K_BATCH/K_ZIP are reserved for the transport"
        );
        if !self.policy.enabled || dst == self.ep.id() {
            self.counters.unbatched += 1;
            self.put_wire(dst, kind, payload);
            return;
        }
        if payload.len() >= self.policy.max_bytes {
            // Oversized: drain everything queued ahead of it, then send
            // unbatched so the big blob does not get copied again.
            self.flush(dst);
            self.counters.unbatched += 1;
            self.put_wire(dst, kind, payload);
            return;
        }
        let q = &mut self.queues[dst.index()];
        put_uvarint(&mut q.buf, kind as u64);
        put_uvarint(&mut q.buf, payload.len() as u64);
        q.buf.put_slice(&payload);
        q.count += 1;
        self.counters.queued += 1;
        if q.count >= self.policy.max_msgs || q.buf.len() >= self.policy.max_bytes {
            self.flush(dst);
        }
    }

    /// Sends `payload` to every *other* machine (through the queues).
    pub fn broadcast(&mut self, kind: u16, payload: &Bytes) {
        for i in 0..self.num_machines() {
            let dst = MachineId::from(i);
            if dst != self.ep.id() {
                self.send(dst, kind, payload.clone());
            }
        }
    }

    /// Puts everything queued for `dst` on the wire.
    pub fn flush(&mut self, dst: MachineId) {
        let q = &mut self.queues[dst.index()];
        if q.count == 0 {
            return;
        }
        let count = q.count;
        q.count = 0;
        let mut buf = std::mem::take(&mut q.buf).freeze();
        // Right-size the replacement up front so the next batch does not
        // re-grow from zero through repeated doublings.
        q.buf.reserve(self.policy.max_bytes);
        if count == 1 {
            // A batch of one is pure overhead: unwrap it.
            let kind = get_uvarint(&mut buf).expect("own framing") as u16;
            let len = get_uvarint(&mut buf).expect("own framing") as usize;
            let payload = buf.copy_to_bytes(len);
            self.counters.unbatched += 1;
            self.counters.queued -= 1;
            self.put_wire(dst, kind, payload);
        } else {
            self.counters.batches += 1;
            self.put_wire(dst, K_BATCH, buf);
        }
    }

    /// Final wire hop: compresses the envelope when the policy asks for it
    /// and it pays off, otherwise ships it raw. Self-sends never compress
    /// (they are free and never touch the wire).
    fn put_wire(&mut self, dst: MachineId, kind: u16, payload: Bytes) {
        if self.fenced[dst.index()] && dst != self.ep.id() {
            return;
        }
        if let Some(l) = &mut self.lease {
            // Piggybacked lease refresh: any traffic towards the master
            // resets the heartbeat clock.
            if dst.index() == LEASE_MASTER && !l.is_master() {
                l.note_sent_to_master();
            }
        }
        if self.policy.compress && dst != self.ep.id() && payload.len() >= self.policy.compress_min
        {
            let packed = compress::compress(&payload);
            if packed.len() + 2 < payload.len() {
                self.counters.compressed += 1;
                self.counters.compress_in += payload.len() as u64;
                self.counters.compress_out += (packed.len() + 2) as u64;
                let mut buf = BytesMut::with_capacity(packed.len() + 2);
                buf.put_u16_le(kind);
                buf.put_slice(&packed);
                // lint: allow(fenced-send) -- put_wire IS the fenced path's terminal hop; the fence mask was checked on entry
                self.ep.send(dst, K_ZIP, buf.freeze());
                return;
            }
        }
        // lint: allow(fenced-send) -- put_wire IS the fenced path's terminal hop; the fence mask was checked on entry
        self.ep.send(dst, kind, payload);
    }

    /// Flushes every destination queue.
    pub fn flush_all(&mut self) {
        for i in 0..self.queues.len() {
            self.flush(MachineId::from(i));
        }
    }

    /// Drops everything buffered on both sides: queued unsent messages and
    /// unpacked-but-unread batch contents. Crash-restart semantics — a
    /// reborn machine must not leak pre-crash traffic into its new life.
    pub fn clear(&mut self) {
        for q in &mut self.queues {
            q.buf.clear();
            q.count = 0;
        }
        self.pending.clear();
    }

    /// Whether the wrapped machine is currently dead under the fault plan
    /// (`Some(restart_scheduled)`), see [`Endpoint::self_death`].
    pub fn self_death(&self) -> Option<bool> {
        self.ep.self_death()
    }

    /// Blocking receive with timeout. Flushes all queues before actually
    /// waiting on the socket — a machine about to sleep must have its
    /// outgoing requests on the wire. Returning an already-available
    /// message (pending batch contents or a non-empty inbox) does not
    /// flush, so replies generated across a burst keep coalescing; the
    /// size/count thresholds bound how long they can sit.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Envelope, RecvError> {
        if self.lease.is_none() {
            return self.recv_inner(timeout);
        }
        // Lease detection slices the wait so heartbeats go out and the
        // master's expiry scan runs even while this machine is blocked.
        // lint: allow(determinism) -- lease pacing is wall-clock by contract; it times heartbeats, never wire contents
        let deadline = Instant::now() + timeout;
        loop {
            self.lease_tick();
            let slice = self.lease.as_ref().expect("lease checked above").config().slice();
            // lint: allow(determinism) -- remaining-wait computation for the lease-sliced block
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.recv_inner(slice.min(remaining)) {
                // Heartbeats refreshed the sender's lease on receipt; the
                // engines never see them.
                Ok(env) if env.kind == K_LEASE => continue,
                Ok(env) => return Ok(env),
                Err(RecvError::Timeout) if remaining > slice => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The actual single-wait receive `recv_timeout` is built on.
    fn recv_inner(&mut self, timeout: Duration) -> Result<Envelope, RecvError> {
        if let Some(env) = self.pending.pop_front() {
            return Ok(env);
        }
        match self.ep.try_recv() {
            Ok(env) => return Ok(self.unpack_first(env)),
            Err(RecvError::Timeout) => {}
            Err(e) => return Err(e),
        }
        self.flush_all();
        let env = self.ep.recv_timeout(timeout)?;
        Ok(self.unpack_first(env))
    }

    /// Non-blocking receive (does not flush: callers drain bursts between
    /// blocking receives, which do).
    pub fn try_recv(&mut self) -> Result<Envelope, RecvError> {
        loop {
            let env = match self.pending.pop_front() {
                Some(env) => env,
                None => {
                    let env = self.ep.try_recv()?;
                    self.unpack_first(env)
                }
            };
            if self.lease.is_some() && env.kind == K_LEASE {
                continue;
            }
            return Ok(env);
        }
    }

    fn unpack_first(&mut self, env: Envelope) -> Envelope {
        if let Some(l) = &mut self.lease {
            // Piggybacked refresh: any envelope from a machine proves it
            // alive. `K_DOWN` is exempt — the fabric stamps the *victim*
            // as its source, and a death notice must not refresh the
            // victim's own lease.
            if env.kind != K_DOWN {
                l.refresh(env.src.index());
            }
        }
        let env = if env.kind == K_ZIP {
            let mut buf = env.payload;
            let kind = buf.get_u16_le();
            let payload =
                Bytes::from(compress::decompress(&buf).expect("corrupt compressed envelope"));
            Envelope { src: env.src, dst: env.dst, kind, payload }
        } else {
            env
        };
        if env.kind != K_BATCH {
            return env;
        }
        debug_assert!(self.pending.is_empty());
        let mut buf = env.payload;
        while buf.has_remaining() {
            let kind = get_uvarint(&mut buf).expect("batch framing") as u16;
            let len = get_uvarint(&mut buf).expect("batch framing") as usize;
            let payload = buf.copy_to_bytes(len);
            self.pending.push_back(Envelope { src: env.src, dst: env.dst, kind, payload });
        }
        self.pending.pop_front().expect("batch envelope holds at least one message")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SimNet;
    use crate::latency::LatencyModel;

    fn pair(policy: BatchPolicy) -> (SimNet, Batcher, Batcher) {
        let (net, mut eps) = SimNet::new(2, LatencyModel::ZERO);
        let b1 = Batcher::new(eps.pop().unwrap().into(), policy);
        let b0 = Batcher::new(eps.pop().unwrap().into(), policy);
        (net, b0, b1)
    }

    #[test]
    fn coalesces_and_preserves_order() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::default());
        for k in 0..10u16 {
            b0.send(MachineId(1), k, Bytes::from(vec![k as u8; 8]));
        }
        b0.flush_all();
        for k in 0..10u16 {
            let env = b1.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.kind, k);
            assert_eq!(&env.payload[..], &vec![k as u8; 8][..]);
            assert_eq!(env.src, MachineId(0));
        }
        // All ten rode in one envelope.
        assert_eq!(net.stats().total_msgs(), 1);
        assert_eq!(b0.counters().batches, 1);
    }

    #[test]
    fn count_threshold_triggers_flush() {
        let policy = BatchPolicy { max_msgs: 3, ..BatchPolicy::default() };
        let (net, mut b0, _b1) = pair(policy);
        for k in 0..3u16 {
            b0.send(MachineId(1), k, Bytes::new());
        }
        assert_eq!(net.stats().total_msgs(), 1, "auto-flush at max_msgs");
    }

    #[test]
    fn byte_threshold_triggers_flush() {
        let policy = BatchPolicy { max_bytes: 100, ..BatchPolicy::default() };
        let (net, mut b0, _b1) = pair(policy);
        b0.send(MachineId(1), 0, Bytes::from(vec![0u8; 60]));
        assert_eq!(net.stats().total_msgs(), 0, "still buffered");
        b0.send(MachineId(1), 1, Bytes::from(vec![0u8; 60]));
        assert_eq!(net.stats().total_msgs(), 1, "auto-flush at max_bytes");
    }

    #[test]
    fn oversized_payload_flushes_queue_first() {
        let policy = BatchPolicy { max_bytes: 64, ..BatchPolicy::default() };
        let (_net, mut b0, mut b1) = pair(policy);
        b0.send(MachineId(1), 0, Bytes::from(vec![1u8; 8]));
        b0.send(MachineId(1), 1, Bytes::from(vec![2u8; 256])); // oversized
        b0.flush_all();
        // Order preserved: queued small message first, then the big one.
        let a = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        let b = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((a.kind, b.kind), (0, 1));
        assert_eq!(b.payload.len(), 256);
    }

    #[test]
    fn single_message_flush_is_unwrapped() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::default());
        b0.send(MachineId(1), 7, Bytes::from_static(b"solo"));
        b0.flush_all();
        let env = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.kind, 7);
        // No K_BATCH framing was paid for a lone message.
        assert_eq!(
            net.stats().machine(MachineId(0)).bytes_sent,
            (crate::cluster::HEADER_BYTES + 4) as u64
        );
    }

    #[test]
    fn disabled_policy_is_pass_through() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::disabled());
        for k in 0..5u16 {
            b0.send(MachineId(1), k, Bytes::new());
        }
        assert_eq!(net.stats().total_msgs(), 5);
        for k in 0..5u16 {
            assert_eq!(b1.recv_timeout(Duration::from_secs(1)).unwrap().kind, k);
        }
    }

    #[test]
    fn self_sends_bypass_queues() {
        let (_net, mut b0, _b1) = pair(BatchPolicy::default());
        b0.send(MachineId(0), 9, Bytes::from_static(b"me"));
        let env = b0.try_recv().unwrap();
        assert_eq!(env.kind, 9);
    }

    #[test]
    fn compressible_envelope_shrinks_on_the_wire() {
        // A compressible batch: many near-identical messages.
        let (net, mut b0, mut b1) = pair(BatchPolicy::default());
        let raw_total: usize = (0..40).map(|_| 2 + 64).sum();
        for k in 0..40u16 {
            b0.send(MachineId(1), k, Bytes::from(vec![0xAB; 64]));
        }
        b0.flush_all();
        for k in 0..40u16 {
            let env = b1.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.kind, k);
            assert_eq!(&env.payload[..], &[0xAB; 64][..]);
        }
        let sent = net.stats().machine(MachineId(0)).bytes_sent as usize;
        assert!(
            sent < raw_total / 2,
            "compressed envelope still {sent} bytes of {raw_total} raw"
        );
        assert_eq!(b0.counters().compressed, 1);
        assert!(b0.counters().compress_out < b0.counters().compress_in);
    }

    #[test]
    fn incompressible_oversized_payload_ships_raw() {
        // Pseudo-random oversized blob: the compressor cannot win, so the
        // wire carries the original kind, not K_ZIP.
        let (net, mut b0, mut b1) = pair(BatchPolicy::default());
        let mut x = 99u64;
        let blob: Vec<u8> = (0..32 * 1024)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        b0.send(MachineId(1), 3, Bytes::from(blob.clone()));
        let env = b1.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.kind, 3);
        assert_eq!(env.payload.len(), blob.len());
        assert_eq!(b0.counters().compressed, 0);
        assert_eq!(
            net.stats().machine(MachineId(0)).bytes_sent,
            (crate::cluster::HEADER_BYTES + blob.len()) as u64
        );
    }

    #[test]
    fn uncompressed_policy_never_zips() {
        let (net, mut b0, mut b1) = pair(BatchPolicy::uncompressed());
        for k in 0..40u16 {
            b0.send(MachineId(1), k, Bytes::from(vec![0u8; 64]));
        }
        b0.flush_all();
        for _ in 0..40 {
            b1.recv_timeout(Duration::from_secs(1)).unwrap();
        }
        assert_eq!(b0.counters().compressed, 0);
        let sent = net.stats().machine(MachineId(0)).bytes_sent as usize;
        assert!(sent > 40 * 64, "raw envelope must carry full payload bytes");
    }

    #[test]
    fn lease_master_declares_silent_worker_dead() {
        // Worker 1 never services its batcher: no traffic, no heartbeats.
        // The master's sliced wait must synthesize a fabric-shaped K_DOWN
        // (restart = false, era 1) within a bounded number of periods.
        let (_net, mut eps) = SimNet::new(2, LatencyModel::ZERO);
        let _b1 = Batcher::new(eps.pop().unwrap().into(), BatchPolicy::default());
        let mut b0 = Batcher::new(eps.pop().unwrap().into(), BatchPolicy::default());
        b0.enable_lease(crate::lease::LeaseConfig::with_period(Duration::from_millis(40)));
        let t0 = std::time::Instant::now();
        let env = b0.recv_timeout(Duration::from_secs(5)).expect("death notice");
        assert_eq!(env.kind, crate::fault::K_DOWN);
        let d: crate::fault::DownMsg =
            crate::codec::decode_from(env.payload).expect("decode DownMsg");
        assert_eq!((d.machine, d.restart, d.era), (1, false, 1));
        assert!(
            t0.elapsed() < Duration::from_millis(400),
            "detection latency unbounded: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn lease_heartbeats_prevent_false_positives_when_idle() {
        // Both machines idle in their receive loops; the worker's
        // heartbeats must keep its lease alive for many periods.
        let (_net, mut eps) = SimNet::new(2, LatencyModel::ZERO);
        let mut b1 = Batcher::new(eps.pop().unwrap().into(), BatchPolicy::default());
        let mut b0 = Batcher::new(eps.pop().unwrap().into(), BatchPolicy::default());
        let cfg = crate::lease::LeaseConfig::with_period(Duration::from_millis(40));
        b0.enable_lease(cfg);
        b1.enable_lease(cfg);
        let h = std::thread::spawn(move || {
            // Idle worker: ~10 lease periods of nothing but heartbeats.
            let _ = b1.recv_timeout(Duration::from_millis(400));
        });
        let got = b0.recv_timeout(Duration::from_millis(400));
        assert!(
            matches!(got, Err(RecvError::Timeout)),
            "idle worker was declared dead: {got:?}"
        );
        h.join().unwrap();
    }

    #[test]
    fn blocking_recv_flushes_pending_sends() {
        // Two batchers ping-pong: each send sits in a queue until the
        // sender blocks in recv_timeout — no explicit flush calls needed.
        let (_net, mut b0, mut b1) = pair(BatchPolicy::default());
        let h = std::thread::spawn(move || {
            for _ in 0..5 {
                let env = b1.recv_timeout(Duration::from_secs(5)).unwrap();
                b1.send(env.src, env.kind + 100, env.payload);
            }
            // Final replies flush when this side blocks one more time.
            let _ = b1.recv_timeout(Duration::from_millis(10));
        });
        for k in 0..5u16 {
            b0.send(MachineId(1), k, Bytes::from_static(b"ping"));
            let reply = b0.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(reply.kind, k + 100);
        }
        h.join().unwrap();
    }
}
