//! Real-TCP transport: the same [`Envelope`] fabric as [`SimNet`], but
//! between OS processes over length-prefixed frames on localhost or a real
//! network (§4.4: one symmetric GraphLab process per machine, asynchronous
//! RPC over TCP/IP).
//!
//! [`TcpNet::connect`] builds a full mesh: every machine listens on its own
//! address and dials every peer, so each ordered (src, dst) pair owns one
//! TCP stream used in one direction. Per-channel FIFO therefore comes from
//! TCP itself — the property [`SimNet`] has to emulate with its deliver-at
//! clamp. The dial side opens each connection with a handshake frame
//! carrying `(magic, version, machine id, cluster size, run id)`; the
//! accept side validates all five and answers with a one-byte ACK before
//! either side puts engine traffic on the wire, so a stray process from
//! another run (or another cluster size) is rejected at the door.
//!
//! Failure semantics are deliberately thinner than the sim fabric's: there
//! is no fault plan, no latency model and no delivery oracle. A send that
//! hits a broken stream redials the peer once (reconnect-on-transient-
//! error) and otherwise drops the message — exactly what a crashed peer
//! looks like from the outside. Deterministic chaos testing stays on
//! [`SimNet`]; `TcpNet` is the honest-wall-clock twin.
//!
//! Traffic accounting matches the sim fabric byte for byte: sends charge
//! [`Envelope::wire_bytes`] (payload + the same [`crate::cluster::HEADER_BYTES`]
//! framing constant) at the send point, receives are charged at actual
//! delivery into the inbox, and per-kind rows attribute batch sub-messages
//! to their real kinds. Each process only observes its own machine's rows —
//! cluster-wide totals are aggregated post-hoc by the spawn harness, the
//! way the paper's system aggregates per-machine logs.
//!
//! [`SimNet`]: crate::cluster::SimNet

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use graphlab_graph::MachineId;
use parking_lot::Mutex;

use crate::cluster::{charge_delivery, charge_send, Envelope, NetStats, RecvError};

/// First handshake field; rejects random port scanners and cross-protocol
/// connects before any state is allocated.
pub const TCP_MAGIC: u32 = 0x474C_4142; // "GLAB"

/// Wire-format version carried in the handshake; bump on incompatible
/// frame-format changes.
pub const TCP_VERSION: u16 = 1;

/// Accept-side handshake reply confirming the connection was validated.
const ACK: u8 = 0xA5;

/// Upper bound on a single frame's payload; a length prefix beyond this is
/// treated as stream corruption and the connection is dropped.
const MAX_FRAME: usize = 256 * 1024 * 1024;

/// How long a mid-run reconnect attempt may take before the message is
/// declared lost (initial mesh setup uses [`TcpConfig::connect_timeout`]).
const RECONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Smallest safe lease period over this transport. A send to an
/// unresponsive peer can block the engine thread for a full
/// `RECONNECT_TIMEOUT` before the link's fail-fast probation kicks in,
/// and during that stall the machine cannot refresh its own lease. A lease
/// shorter than a couple of those windows turns ordinary redial stalls
/// into false-positive deaths — the master then "adopts" machines that
/// are still alive. The driver clamps any configured period up to this.
pub const MIN_TCP_LEASE: Duration = Duration::from_secs(5);

/// Configuration of one machine's TCP transport.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpConfig {
    /// Which machine this process is.
    pub machine: MachineId,
    /// Socket address of every machine, indexed by machine id (`peers.len()`
    /// is the cluster size). This process listens on `peers[machine]`.
    pub peers: Vec<String>,
    /// Cluster-unique run identifier; connections from other runs are
    /// rejected at the handshake.
    pub run_id: u64,
    /// Deadline for establishing the full mesh (listeners of slow-starting
    /// peers are re-dialled until it expires).
    pub connect_timeout: Duration,
}

impl TcpConfig {
    /// A config with the default 30 s mesh-setup deadline.
    pub fn new(machine: MachineId, peers: Vec<String>, run_id: u64) -> Self {
        TcpConfig { machine, peers, run_id, connect_timeout: Duration::from_secs(30) }
    }
}

/// State shared by the endpoint, the owner handle and every I/O thread:
/// the shutdown latch plus clones of all live streams so shutdown can
/// unblock readers from the outside.
struct TcpShared {
    shutdown: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

impl TcpShared {
    fn register(&self, s: &TcpStream) {
        if let Ok(c) = s.try_clone() {
            self.conns.lock().push(c);
        }
    }

    fn close_all(&self, how: Shutdown) {
        for c in self.conns.lock().iter() {
            let _ = c.shutdown(how);
        }
    }
}

/// Registry of live transports in this process, for signal handlers
/// (`graphlab-node` SIGTERM/Ctrl-C) that must close sockets gracefully
/// from outside the engine's call stack.
static ACTIVE: std::sync::Mutex<Vec<Weak<TcpShared>>> = std::sync::Mutex::new(Vec::new());

/// Set once this process's first [`TcpNet::connect`] finishes dialing
/// every peer. Chaos hooks (`graphlab-node --die-after-ms`) key their
/// delay off this instead of process start, so a slow (debug-profile)
/// setup can't turn a kill-mid-run scenario into a kill-during-dial one
/// that strands the peers in mesh setup.
static MESH_UP: AtomicBool = AtomicBool::new(false);

/// True once any [`TcpNet::connect`] in this process has completed its
/// outgoing dials (the mesh is usable; incoming sides may still be
/// completing asynchronously).
pub fn mesh_established() -> bool {
    MESH_UP.load(Ordering::SeqCst)
}

/// Gracefully shuts down every live [`TcpNet`] in this process: further
/// sends stop, write halves are closed (FIN after any queued bytes), and
/// peers observe a clean EOF. Safe to call from a signal-watcher thread.
pub fn shutdown_active() {
    let mut reg = ACTIVE.lock().expect("tcp registry poisoned");
    reg.retain(|w| {
        let Some(shared) = w.upgrade() else { return false };
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.close_all(Shutdown::Write);
        true
    });
}

/// Owner handle of one machine's TCP transport (listener, acceptor and
/// reader threads). Dropping it closes every connection and joins the I/O
/// threads; the paired [`TcpEndpoint`] should be dropped first.
pub struct TcpNet {
    shared: Arc<TcpShared>,
    stats: Arc<NetStats>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpNet {
    /// Builds this machine's side of the mesh: binds `peers[machine]`,
    /// accepts and validates incoming connections in the background, and
    /// dials every peer (retrying until `connect_timeout`) with the
    /// handshake. Returns once all outgoing connections are established —
    /// incoming ones complete asynchronously as peers dial in.
    pub fn connect(cfg: &TcpConfig) -> io::Result<(TcpNet, TcpEndpoint)> {
        let n = cfg.peers.len();
        let me = cfg.machine;
        assert!(n > 0, "cluster needs at least one machine");
        assert!(me.index() < n, "machine id {me} out of range for {n} peers");

        // lint: allow(determinism) -- mesh-dial deadline; the real-socket backend is wall-clock by nature
        let deadline = Instant::now() + cfg.connect_timeout;
        let listener = bind_retry(&cfg.peers[me.index()], deadline)?;
        listener.set_nonblocking(true)?;

        let stats = Arc::new(NetStats::new(n));
        let shared = Arc::new(TcpShared { shutdown: AtomicBool::new(false), conns: Mutex::new(Vec::new()) });
        ACTIVE.lock().expect("tcp registry poisoned").push(Arc::downgrade(&shared));
        let (inbox_tx, rx) = channel::unbounded();
        let threads = Mutex::new(Vec::new());

        let net = TcpNet { shared: Arc::clone(&shared), stats: Arc::clone(&stats), threads };

        // Acceptor: validates handshakes and spawns one reader per incoming
        // stream, for the life of the transport (reconnects re-enter here).
        {
            let shared = Arc::clone(&shared);
            let stats = Arc::clone(&stats);
            let inbox_tx = inbox_tx.clone();
            let run_id = cfg.run_id;
            let acceptor = std::thread::Builder::new()
                .name(format!("tcp-accept-{me}"))
                .spawn(move || accept_loop(listener, me, n as u16, run_id, stats, inbox_tx, shared))
                .expect("spawn tcp acceptor");
            net.threads.lock().push(acceptor);
        }

        // Dial every peer. Peers start in arbitrary order, so each dial
        // retries until the mesh deadline.
        let mut outs: Vec<Mutex<OutLink>> = Vec::with_capacity(n);
        for (j, peer) in cfg.peers.iter().enumerate() {
            if j == me.index() {
                outs.push(Mutex::new(OutLink { stream: None, retry_after: None }));
                continue;
            }
            let s = dial(peer, me, n as u16, cfg.run_id, deadline)?;
            shared.register(&s);
            outs.push(Mutex::new(OutLink { stream: Some(s), retry_after: None }));
        }

        let ep = TcpEndpoint {
            id: me,
            n,
            run_id: cfg.run_id,
            peers: cfg.peers.clone(),
            stats,
            outs,
            shared,
            inbox_tx,
            rx,
        };
        MESH_UP.store(true, Ordering::SeqCst);
        Ok((net, ep))
    }

    /// This machine's view of the traffic counters (own rows only; peers
    /// account for themselves).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Graceful shutdown: stops further sends and closes the write half of
    /// every connection (FIN after queued bytes), so peers drain what was
    /// sent and then observe EOF. Reads stay open until drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.close_all(Shutdown::Write);
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.shutdown();
        // Force blocked readers out of `read` and join everything.
        self.shared.close_all(Shutdown::Both);
        for h in self.threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Outgoing link to one peer: the live stream (if any) plus the fail-fast
/// probation marker set when a redial burns its full deadline.
struct OutLink {
    stream: Option<TcpStream>,
    /// After a failed redial, sends to this peer drop immediately until
    /// this instant instead of dialling again. Without the probation a
    /// dead peer costs every send a full `RECONNECT_TIMEOUT` stall,
    /// which blocks the engine thread long enough to starve its own lease
    /// heartbeats — the master then declares *live* machines dead.
    retry_after: Option<Instant>,
}

/// One machine's handle on the TCP fabric; the real-socket counterpart of
/// [`crate::cluster::SimEndpoint`] with identical send/receive semantics.
pub struct TcpEndpoint {
    id: MachineId,
    n: usize,
    run_id: u64,
    peers: Vec<String>,
    stats: Arc<NetStats>,
    outs: Vec<Mutex<OutLink>>,
    shared: Arc<TcpShared>,
    inbox_tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
}

impl TcpEndpoint {
    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Number of machines in the cluster.
    pub fn num_machines(&self) -> usize {
        self.n
    }

    /// This machine's traffic counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Sends `payload` to `dst`. Self-sends deliver through the inbox and
    /// are charged zero network bytes, like the sim fabric. A broken stream
    /// is redialled once (with a fresh handshake); if that also fails the
    /// message is dropped — the peer is gone — and the link enters a
    /// fail-fast probation: further sends drop immediately (no dial, no
    /// stall) until `RECONNECT_TIMEOUT` has passed, so a dead peer costs
    /// the caller at most one redial deadline per probation window.
    pub fn send(&self, dst: MachineId, kind: u16, payload: Bytes) {
        let env = Envelope { src: self.id, dst, kind, payload };
        if dst == self.id {
            let _ = self.inbox_tx.send(env);
            return;
        }
        charge_send(&self.stats, &env);
        let mut out = self.outs[dst.index()].lock();
        let sent = match out.stream.as_mut() {
            Some(s) => write_frame(s, &env).is_ok(),
            None => false,
        };
        if sent {
            return;
        }
        out.stream = None;
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // lint: allow(determinism) -- probation clock; the real-socket backend is wall-clock by nature
        let now = Instant::now();
        if out.retry_after.is_some_and(|t| now < t) {
            return; // peer recently unreachable: fail fast, drop the message
        }
        let deadline = now + RECONNECT_TIMEOUT;
        if let Ok(mut s) = dial(&self.peers[dst.index()], self.id, self.n as u16, self.run_id, deadline)
        {
            if write_frame(&mut s, &env).is_ok() {
                self.shared.register(&s);
                out.stream = Some(s);
                out.retry_after = None;
                return;
            }
        }
        // lint: allow(determinism) -- probation clock; the real-socket backend is wall-clock by nature
        out.retry_after = Some(Instant::now() + RECONNECT_TIMEOUT);
    }

    /// Broadcasts to every *other* machine.
    pub fn broadcast(&self, kind: u16, payload: &Bytes) {
        for i in 0..self.n {
            let dst = MachineId::from(i);
            if dst != self.id {
                self.send(dst, kind, payload.clone());
            }
        }
    }

    /// Fault-plan self-inspection: always `None` — deterministic fault
    /// injection lives on [`crate::cluster::SimNet`] only.
    pub fn self_death(&self) -> Option<bool> {
        None
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        // lint: allow(blocking-recv) -- the transport-layer primitive itself; engines only call the seam's recv_timeout (PR 5 termination audit)
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, RecvError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Timeout,
            TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Graceful shutdown of the send side: peers drain in-flight frames and
    /// then observe EOF. Equivalent to [`TcpNet::shutdown`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.close_all(Shutdown::Write);
    }
}

// ------------------------------------------------------------------ wire

/// Writes one `[len u32 | kind u16 | payload]` frame. Small frames go out
/// in a single write so `TCP_NODELAY` does not split them into two packets.
fn write_frame(s: &mut TcpStream, env: &Envelope) -> io::Result<()> {
    let len = env.payload.len();
    let mut header = [0u8; 6];
    header[..4].copy_from_slice(&(len as u32).to_le_bytes());
    header[4..].copy_from_slice(&env.kind.to_le_bytes());
    if len <= 64 * 1024 {
        let mut buf = Vec::with_capacity(6 + len);
        buf.extend_from_slice(&header);
        buf.extend_from_slice(&env.payload);
        s.write_all(&buf)
    } else {
        s.write_all(&header)?;
        s.write_all(&env.payload)
    }
}

/// Reads frames off one incoming stream until EOF/error, charging delivery
/// and handing envelopes to the inbox.
fn reader_loop(
    mut s: TcpStream,
    src: MachineId,
    dst: MachineId,
    stats: Arc<NetStats>,
    inbox_tx: Sender<Envelope>,
) {
    let mut header = [0u8; 6];
    loop {
        if s.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let kind = u16::from_le_bytes(header[4..].try_into().expect("2 bytes"));
        if len > MAX_FRAME {
            return; // corrupt stream
        }
        let mut payload = vec![0u8; len];
        if s.read_exact(&mut payload).is_err() {
            return;
        }
        let env = Envelope { src, dst, kind, payload: Bytes::from(payload) };
        charge_delivery(&stats, &env);
        if inbox_tx.send(env).is_err() {
            return; // endpoint gone
        }
    }
}

/// Accepts, validates and wires up incoming connections until shutdown.
fn accept_loop(
    listener: TcpListener,
    me: MachineId,
    n: u16,
    run_id: u64,
    stats: Arc<NetStats>,
    inbox_tx: Sender<Envelope>,
    shared: Arc<TcpShared>,
) {
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut s, _)) => {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                match read_handshake(&mut s, n, run_id) {
                    Ok(src) => {
                        if s.write_all(&[ACK]).is_err() {
                            continue;
                        }
                        let _ = s.set_read_timeout(None);
                        shared.register(&s);
                        let stats = Arc::clone(&stats);
                        let tx = inbox_tx.clone();
                        let h = std::thread::Builder::new()
                            .name(format!("tcp-read-{me}-from-{src}"))
                            .spawn(move || reader_loop(s, src, me, stats, tx))
                            .expect("spawn tcp reader");
                        readers.push(h);
                    }
                    Err(_) => drop(s), // wrong magic/version/run/size: reject
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Readers exit on EOF or forced close; TcpNet::drop has closed every
    // registered stream by the time the acceptor sees the latch.
    for h in readers {
        let _ = h.join();
    }
}

/// 16-byte dial-side handshake: magic, version, src machine, cluster size,
/// run id.
fn handshake_bytes(src: MachineId, n: u16, run_id: u64) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..4].copy_from_slice(&TCP_MAGIC.to_le_bytes());
    b[4..6].copy_from_slice(&TCP_VERSION.to_le_bytes());
    b[6..8].copy_from_slice(&(src.index() as u16).to_le_bytes());
    b[8..10].copy_from_slice(&n.to_le_bytes());
    b[10..].copy_from_slice(&run_id.to_le_bytes()[..6]); // low 48 bits
    b
}

fn read_handshake(s: &mut TcpStream, n: u16, run_id: u64) -> io::Result<MachineId> {
    let mut b = [0u8; 16];
    s.read_exact(&mut b)?;
    let expect = handshake_bytes(MachineId(0), n, run_id);
    let src = u16::from_le_bytes(b[6..8].try_into().expect("2 bytes"));
    if b[..6] != expect[..6] || b[8..] != expect[8..] || src >= n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "handshake mismatch: wrong magic/version/cluster-size/run-id",
        ));
    }
    Ok(MachineId(src))
}

/// Dials `addr` with retries until `deadline`, performing the handshake and
/// waiting for the accept side's ACK.
fn dial(addr: &str, src: MachineId, n: u16, run_id: u64, deadline: Instant) -> io::Result<TcpStream> {
    let hs = handshake_bytes(src, n, run_id);
    loop {
        let err = match TcpStream::connect(addr) {
            Ok(mut s) => {
                let _ = s.set_nodelay(true);
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                let ok = s.write_all(&hs).is_ok() && {
                    let mut ack = [0u8; 1];
                    s.read_exact(&mut ack).is_ok() && ack[0] == ACK
                };
                if ok {
                    let _ = s.set_read_timeout(None);
                    return Ok(s);
                }
                io::Error::new(io::ErrorKind::ConnectionRefused, format!("{addr} rejected handshake"))
            }
            Err(e) => e,
        };
        // lint: allow(determinism) -- dial-retry deadline; the real-socket backend is wall-clock by nature
        if Instant::now() >= deadline {
            return Err(err);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Binds `addr` with retries until `deadline` — a freshly spawned worker
/// may race a just-released port from the parent's allocation pass.
fn bind_retry(addr: &str, deadline: Instant) -> io::Result<TcpListener> {
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) => {
                // lint: allow(determinism) -- bind-retry deadline; the real-socket backend is wall-clock by nature
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}
