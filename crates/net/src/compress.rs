//! LZ-style envelope compression for the batching layer.
//!
//! Scope-data payloads dominate cluster bytes (ISSUE 3): a 16 KiB batch
//! envelope full of `ScopeDataMsg` rows repeats ids, version patterns and
//! framing constantly, which a byte-oriented LZSS pass removes cheaply and
//! without any external dependency.
//!
//! Format: `uvarint(raw_len)` followed by token groups — a control byte
//! whose bits (LSB first) flag the next eight tokens, `1` = one literal
//! byte, `0` = a back-reference of `u16` little-endian distance (1..=65535,
//! relative to the current output position) and one length byte encoding
//! `MIN_MATCH ..= MIN_MATCH + 255` bytes. Overlapping matches are allowed
//! (distance < length acts as run-length encoding).
//!
//! The compressor is greedy with a single-entry hash table over 4-byte
//! prefixes — no chains, no lazy matching — tuned for "fast and always
//! correct" rather than maximal ratio. [`compress`] never fails;
//! [`decompress`] validates every reference and returns `None` on malformed
//! input. `decompress(compress(x)) == x` for every byte string (pinned by
//! the workspace proptest suite).

/// Matches shorter than this are emitted as literals.
pub const MIN_MATCH: usize = 4;
/// Longest back-reference one token can encode.
pub const MAX_MATCH: usize = MIN_MATCH + 255;
/// Furthest back a reference can reach.
pub const MAX_DISTANCE: usize = u16::MAX as usize;

const HASH_BITS: u32 = 13;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn put_uvarint_vec(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_uvarint_slice(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        if shift == 63 && (b & 0x7f) > 1 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Compresses `data`. The output always decompresses back exactly; it is
/// *not* guaranteed to be smaller (callers keep the raw form when it wins).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 10);
    put_uvarint_vec(&mut out, data.len() as u64);

    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut ctrl_pos = 0usize;
    let mut ctrl_left = 0u32;
    let mut i = 0usize;

    macro_rules! begin_token {
        ($is_literal:expr) => {{
            if ctrl_left == 0 {
                ctrl_pos = out.len();
                out.push(0);
                ctrl_left = 8;
            }
            if $is_literal {
                out[ctrl_pos] |= 1 << (8 - ctrl_left);
            }
            ctrl_left -= 1;
        }};
    }

    while i < data.len() {
        let mut match_len = 0usize;
        let mut match_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let cand = head[h] as usize;
            head[h] = i as u32;
            if cand != u32::MAX as usize && i - cand <= MAX_DISTANCE {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    match_len = l;
                    match_dist = i - cand;
                }
            }
        }
        if match_len > 0 {
            begin_token!(false);
            out.extend_from_slice(&(match_dist as u16).to_le_bytes());
            out.push((match_len - MIN_MATCH) as u8);
            // Seed the table inside the matched region so later data can
            // reference it too.
            let end = i + match_len;
            i += 1;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    head[hash4(data, i)] = i as u32;
                }
                i += 1;
            }
        } else {
            begin_token!(true);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

/// Decompresses a [`compress`] output. Returns `None` on any malformed
/// input: bad length header, truncated tokens, out-of-window references or
/// trailing garbage.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let raw_len = get_uvarint_slice(data, &mut pos)? as usize;
    // Defensive bound: nothing in this system compresses gigabyte blobs.
    if raw_len > (1 << 30) {
        return None;
    }
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let ctrl = *data.get(pos)?;
        pos += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if ctrl >> bit & 1 == 1 {
                out.push(*data.get(pos)?);
                pos += 1;
            } else {
                let lo = *data.get(pos)?;
                let hi = *data.get(pos + 1)?;
                let len = *data.get(pos + 2)? as usize + MIN_MATCH;
                pos += 3;
                let dist = u16::from_le_bytes([lo, hi]) as usize;
                if dist == 0 || dist > out.len() || out.len() + len > raw_len {
                    return None;
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if pos != data.len() {
        return None; // trailing garbage
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let packed = compress(data);
        assert_eq!(decompress(&packed).as_deref(), Some(data), "roundtrip failed");
        packed.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn incompressible_random_bytes() {
        // Deterministic pseudo-random stream: no 4-byte repeats likely.
        let mut x = 0x1234_5678u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn runs_compress_well() {
        let data = vec![0u8; 10_000];
        let n = roundtrip(&data);
        assert!(n < 200, "run of zeros compressed to {n} bytes");
    }

    #[test]
    fn repeated_structure_compresses() {
        // Simulates a batch of similar rows: id, version, 8-byte payload.
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&[1, 0]);
            data.extend_from_slice(&1.0f64.to_le_bytes());
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 2, "structured rows: {n} of {}", data.len());
    }

    #[test]
    fn overlapping_matches() {
        let data = b"abababababababababababab";
        roundtrip(data);
        let data: Vec<u8> = std::iter::repeat_n(b"xyz".iter().copied(), 100).flatten().collect();
        roundtrip(&data);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(decompress(&[]), None);
        // Length says 4 bytes but no tokens follow.
        assert_eq!(decompress(&[4]), None);
        // Back-reference before the start of output.
        // raw_len=4, ctrl=0 (match), dist=9 len_code=0 -> dist > produced.
        assert_eq!(decompress(&[4, 0x00, 9, 0, 0]), None);
        // Zero distance is invalid.
        assert_eq!(decompress(&[4, 0x00, 0, 0, 0]), None);
        // Trailing garbage after a complete stream.
        let mut ok = compress(b"hello world hello world");
        assert!(decompress(&ok).is_some());
        ok.push(0);
        assert_eq!(decompress(&ok), None);
    }

    #[test]
    fn match_length_bounds() {
        // A run exactly at MAX_MATCH and one over.
        for n in [MAX_MATCH, MAX_MATCH + 1, 3 * MAX_MATCH + 7] {
            roundtrip(&vec![7u8; n]);
        }
    }
}
