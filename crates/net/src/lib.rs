//! # graphlab-net
//!
//! The cluster runtime underlying the distributed GraphLab reproduction
//! (§4.4 "System Design"), behind one **transport seam**.
//!
//! The paper runs one symmetric GraphLab process per EC2 machine,
//! communicating through a custom asynchronous RPC protocol over TCP/IP.
//! This crate offers that fabric twice behind a single seam
//! ([`transport::Endpoint`] / [`transport::Net`], selected by
//! [`transport::Transport`]):
//!
//! - [`cluster::SimNet`] — the deterministic in-process twin: every
//!   *machine* is an OS thread, latency is modelled, faults are injected
//!   from a seeded plan, and whole-cluster runs replay bit-identically.
//! - [`tcp::TcpNet`] — real length-prefixed TCP between OS processes
//!   (one per machine, full mesh, handshake-validated), for honest
//!   wall-clock numbers.
//!
//! Both backends expose identical semantics — per-channel FIFO, the same
//! [`cluster::RecvError`] meanings, free self-sends, delivery-charged
//! [`cluster::NetStats`] — and are pinned to each other by a shared
//! transport-conformance suite, so engine protocols proven under chaos on
//! `SimNet` run byte-for-byte unchanged over sockets (the
//! FoundationDB/MadSim pattern). Three properties keep the fabric honest
//! on either backend:
//!
//! 1. **Share-nothing**: every payload crossing a machine boundary must be
//!    encoded to bytes through the [`codec::Codec`] trait. Machines never
//!    exchange references to each other's state.
//! 2. **Measured**: per-machine sent/received byte and message counters
//!    ([`cluster::NetStats`]) feed the bandwidth figures (Fig. 6(b)).
//! 3. **Latency-aware**: on `SimNet`, an optional delivery thread imposes a
//!    configurable per-message latency (fixed + size-proportional +
//!    deterministic jitter), which is what makes pipelining (§4.2.2)
//!    matter; on `TcpNet` the latency is the real network's.
//!
//! ## Delivery guarantees
//!
//! The fabric models each (src, dst) pair as an independent TCP-like
//! channel and guarantees, under **every** latency model:
//!
//! - **Per-channel FIFO**: messages from A to B arrive in send order. A
//!   channel's messages are clamped so no successor is scheduled to
//!   deliver before its predecessor, even when bandwidth or jitter terms
//!   would say otherwise.
//! - **Bandwidth serialization**: a channel transmits one message at a
//!   time; `per_kib` charges queueing delay behind earlier messages, not
//!   just propagation.
//! - **No cross-channel ordering**: distinct channels interleave freely.
//!
//! Engine protocols may (and do) rely on per-channel ordering: the
//! locking engine's schedule-before-release invariant, the asynchronous
//! Chandy-Lamport snapshot marker (Alg. 5), and the chromatic engine's
//! counting flush all assume it. `SimNet` enforces this with its
//! deliver-at clamp (see [`cluster`]); `TcpNet` gets it from TCP itself by
//! dedicating one stream to each ordered (src, dst) pair (see [`tcp`]).
//!
//! ## Wire format
//!
//! Everything crossing a machine boundary is byte-encoded through the
//! [`codec::Codec`] trait. Since ISSUE 3 the scalar encoding is
//! **varint-based**: `u16`/`u32`/`u64`/`usize` are LEB128, `i64` is
//! zig-zag + LEB128, collection lengths are varints, and sorted id lists
//! can be gap-encoded ([`codec::put_id_deltas`]). Floats and single bytes
//! stay fixed-width. Engine traffic is dominated by small ids, versions
//! and lengths, so this roughly halves control-message payloads.
//!
//! On top of the codec, a batching layer ([`batch::Batcher`]) coalesces
//! small control messages bound for the same machine into one envelope
//! (flushed by size/count thresholds and before every blocking receive),
//! preserving per-channel order. Outgoing envelopes at least
//! [`batch::BatchPolicy::compress_min`] bytes long are additionally run
//! through a dependency-free LZSS pass ([`compress`]) and shipped under a
//! reserved kind when that shrinks them. Two transport kinds are reserved:
//! [`batch::K_BATCH`] (`u16::MAX`, batch envelope) and [`batch::K_ZIP`]
//! (`u16::MAX - 1`, compressed envelope); application tag spaces must stay
//! clear of both.
//!
//! Traffic is measured by [`cluster::NetStats`]: per-machine send/receive
//! counters plus a per-message-kind breakdown charged at delivery
//! ([`cluster::NetStats::by_kind`]) that attributes batch sub-messages to
//! their real kinds — the instrumentation behind `repro -- abl-bytes`.
//!
//! The crate also provides the two distributed-coordination state machines
//! the engines are built from: a marker/token termination detector
//! ([`termination::Safra`], the algorithm of Misra \[26\] in its
//! counter-carrying Safra formulation) and an epoch barrier
//! ([`barrier::BarrierMaster`]).

pub mod barrier;
pub mod batch;
pub mod cluster;
pub mod codec;
pub mod compress;
pub mod fault;
pub mod latency;
pub mod lease;
pub mod tcp;
pub mod termination;
pub mod transport;

pub use barrier::BarrierMaster;
pub use batch::{BatchCounters, BatchPolicy, Batcher, K_BATCH, K_ZIP};
pub use cluster::{Envelope, KindTraffic, MachineTraffic, NetStats, RecvError, SimEndpoint, SimNet};
pub use codec::{decode_from, encode_to_bytes, Codec};
pub use fault::{DownMsg, FaultEvent, FaultPlan, FaultTrigger, UpMsg, K_DOWN, K_UP};
pub use latency::LatencyModel;
pub use lease::{LeaseConfig, LeaseMsg, LeaseState, K_LEASE};
pub use tcp::{mesh_established, shutdown_active, TcpConfig, TcpEndpoint, TcpNet, MIN_TCP_LEASE};
pub use termination::{Safra, SafraAction, Token};
pub use transport::{Endpoint, Net, Transport};
