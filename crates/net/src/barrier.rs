//! Distributed epoch barrier.
//!
//! The chromatic engine requires "a full communication barrier between
//! color-steps" (§4.2.1). The barrier is master-coordinated: every machine
//! sends *arrive(epoch)* to machine 0 once its colour-step work **and**
//! outbound ghost flushes are complete; the master releases everyone when
//! the last machine arrives.
//!
//! Like [`crate::termination::Safra`] this is a transport-free state
//! machine driven from the engine event loop, which keeps it independently
//! testable. Epoch tags make stray duplicate arrivals from earlier epochs
//! harmless.

use graphlab_graph::MachineId;

/// Master-side barrier bookkeeping (lives on machine 0).
#[derive(Debug)]
pub struct BarrierMaster {
    n: usize,
    epoch: u64,
    arrived: Vec<bool>,
    arrived_count: usize,
}

impl BarrierMaster {
    /// Creates the master state for an `n`-machine cluster; the first
    /// barrier is epoch 0.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        BarrierMaster { n, epoch: 0, arrived: vec![false; n], arrived_count: 0 }
    }

    /// Current epoch being collected.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records that `machine` arrived at `epoch`.
    ///
    /// Returns `true` exactly once per epoch — when the final machine
    /// arrives — at which point the caller must broadcast the release and
    /// the master advances to the next epoch. Arrivals for past epochs are
    /// ignored; arrivals for future epochs are a protocol violation.
    pub fn arrive(&mut self, machine: MachineId, epoch: u64) -> bool {
        if epoch < self.epoch {
            return false; // stale duplicate
        }
        assert_eq!(
            epoch, self.epoch,
            "machine {machine} arrived at future epoch {epoch} (current {})",
            self.epoch
        );
        let i = machine.index();
        assert!(i < self.n, "unknown machine {machine}");
        if self.arrived[i] {
            return false;
        }
        self.arrived[i] = true;
        self.arrived_count += 1;
        if self.arrived_count == self.n {
            self.epoch += 1;
            self.arrived.iter_mut().for_each(|a| *a = false);
            self.arrived_count = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_when_all_arrive() {
        let mut b = BarrierMaster::new(3);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(!b.arrive(MachineId(2), 0));
        assert!(b.arrive(MachineId(1), 0));
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn duplicate_arrivals_ignored() {
        let mut b = BarrierMaster::new(2);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(!b.arrive(MachineId(0), 0));
        assert!(b.arrive(MachineId(1), 0));
    }

    #[test]
    fn stale_epoch_ignored() {
        let mut b = BarrierMaster::new(2);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(b.arrive(MachineId(1), 0));
        // Epoch 0 arrival landing late:
        assert!(!b.arrive(MachineId(0), 0));
        // Epoch 1 proceeds normally.
        assert!(!b.arrive(MachineId(1), 1));
        assert!(b.arrive(MachineId(0), 1));
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    fn single_machine_barrier_is_immediate() {
        let mut b = BarrierMaster::new(1);
        assert!(b.arrive(MachineId(0), 0));
        assert!(b.arrive(MachineId(0), 1));
    }

    #[test]
    #[should_panic(expected = "future epoch")]
    fn future_epoch_panics() {
        let mut b = BarrierMaster::new(2);
        b.arrive(MachineId(0), 5);
    }

    #[test]
    fn many_epochs() {
        let mut b = BarrierMaster::new(4);
        for epoch in 0..100 {
            for m in 0..3 {
                assert!(!b.arrive(MachineId(m), epoch));
            }
            assert!(b.arrive(MachineId(3), epoch));
        }
        assert_eq!(b.epoch(), 100);
    }
}
