//! Distributed epoch barrier.
//!
//! The chromatic engine requires "a full communication barrier between
//! color-steps" (§4.2.1). The barrier is master-coordinated: every machine
//! sends *arrive(epoch)* to machine 0 once its colour-step work **and**
//! outbound ghost flushes are complete; the master releases everyone when
//! the last machine arrives.
//!
//! Like [`crate::termination::Safra`] this is a transport-free state
//! machine driven from the engine event loop, which keeps it independently
//! testable. Epoch tags make stray duplicate arrivals from earlier epochs
//! harmless.
//!
//! # Faults
//!
//! A dead machine never arrives, so a barrier epoch that includes it
//! **waits forever** — the algorithm has no internal timeout. A consumer
//! must pair the wait with a bounded `recv_timeout` and a death check,
//! and tell the master about deaths via
//! [`BarrierMaster::on_machine_down`]: the victim is excluded from the
//! current and later epochs (releasing the epoch if it was the last
//! straggler) until [`BarrierMaster::on_machine_up`] re-admits it after
//! recovery. `tests::dead_machine_releases_epoch` pins the wait-forever
//! path and the fix.
//!
//! Note: the engines currently do not build on this type — the chromatic
//! engine uses its own counting flush, whose fault handling lives in the
//! engines' recovery protocol (`graphlab-core`). `BarrierMaster` is the
//! reference barrier for future consumers; its death handling is pinned
//! here at the unit level.

use graphlab_graph::MachineId;

/// Master-side barrier bookkeeping (lives on machine 0).
#[derive(Debug)]
pub struct BarrierMaster {
    n: usize,
    epoch: u64,
    arrived: Vec<bool>,
    arrived_count: usize,
    dead: Vec<bool>,
    dead_count: usize,
}

impl BarrierMaster {
    /// Creates the master state for an `n`-machine cluster; the first
    /// barrier is epoch 0.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        BarrierMaster {
            n,
            epoch: 0,
            arrived: vec![false; n],
            arrived_count: 0,
            dead: vec![false; n],
            dead_count: 0,
        }
    }

    /// Current epoch being collected.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records that `machine` arrived at `epoch`.
    ///
    /// Returns `true` exactly once per epoch — when the final machine
    /// arrives — at which point the caller must broadcast the release and
    /// the master advances to the next epoch. Arrivals for past epochs are
    /// ignored; arrivals for future epochs are a protocol violation.
    pub fn arrive(&mut self, machine: MachineId, epoch: u64) -> bool {
        if epoch < self.epoch {
            return false; // stale duplicate
        }
        assert_eq!(
            epoch, self.epoch,
            "machine {machine} arrived at future epoch {epoch} (current {})",
            self.epoch
        );
        let i = machine.index();
        assert!(i < self.n, "unknown machine {machine}");
        debug_assert!(!self.dead[i], "dead machine {machine} cannot arrive");
        if self.arrived[i] {
            return false;
        }
        self.arrived[i] = true;
        self.arrived_count += 1;
        self.maybe_release()
    }

    /// Excludes a dead machine from the current and subsequent epochs — a
    /// machine that will never arrive must not wedge the barrier forever.
    /// Returns `true` when the exclusion releases the current epoch (the
    /// victim was the last machine everyone was waiting on).
    pub fn on_machine_down(&mut self, machine: MachineId) -> bool {
        let i = machine.index();
        assert!(i < self.n, "unknown machine {machine}");
        if self.dead[i] {
            return false;
        }
        self.dead[i] = true;
        self.dead_count += 1;
        assert!(self.dead_count < self.n, "every machine is dead");
        if self.arrived[i] {
            // Its arrival this epoch no longer counts.
            self.arrived[i] = false;
            self.arrived_count -= 1;
        }
        self.maybe_release()
    }

    /// Re-admits a recovered machine from the *next* epoch on (it has no
    /// standing in the current one).
    pub fn on_machine_up(&mut self, machine: MachineId) {
        let i = machine.index();
        assert!(i < self.n, "unknown machine {machine}");
        if self.dead[i] {
            self.dead[i] = false;
            self.dead_count -= 1;
            // Not arrived in the current epoch: it must arrive like
            // everyone else from the next epoch it participates in.
            debug_assert!(!self.arrived[i]);
        }
    }

    fn maybe_release(&mut self) -> bool {
        if self.arrived_count + self.dead_count == self.n {
            self.epoch += 1;
            self.arrived.iter_mut().for_each(|a| *a = false);
            self.arrived_count = 0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_when_all_arrive() {
        let mut b = BarrierMaster::new(3);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(!b.arrive(MachineId(2), 0));
        assert!(b.arrive(MachineId(1), 0));
        assert_eq!(b.epoch(), 1);
    }

    #[test]
    fn duplicate_arrivals_ignored() {
        let mut b = BarrierMaster::new(2);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(!b.arrive(MachineId(0), 0));
        assert!(b.arrive(MachineId(1), 0));
    }

    #[test]
    fn stale_epoch_ignored() {
        let mut b = BarrierMaster::new(2);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(b.arrive(MachineId(1), 0));
        // Epoch 0 arrival landing late:
        assert!(!b.arrive(MachineId(0), 0));
        // Epoch 1 proceeds normally.
        assert!(!b.arrive(MachineId(1), 1));
        assert!(b.arrive(MachineId(0), 1));
        assert_eq!(b.epoch(), 2);
    }

    #[test]
    fn single_machine_barrier_is_immediate() {
        let mut b = BarrierMaster::new(1);
        assert!(b.arrive(MachineId(0), 0));
        assert!(b.arrive(MachineId(0), 1));
    }

    #[test]
    #[should_panic(expected = "future epoch")]
    fn future_epoch_panics() {
        let mut b = BarrierMaster::new(2);
        b.arrive(MachineId(0), 5);
    }

    #[test]
    fn dead_machine_releases_epoch() {
        // Fault audit: without death exclusion the epoch waits forever on
        // a machine that will never arrive.
        let mut b = BarrierMaster::new(3);
        assert!(!b.arrive(MachineId(0), 0));
        assert!(!b.arrive(MachineId(1), 0));
        // Machine 2 dies instead of arriving: that *is* the release.
        assert!(b.on_machine_down(MachineId(2)));
        assert_eq!(b.epoch(), 1);
        // While dead it is excluded from later epochs too.
        assert!(!b.arrive(MachineId(0), 1));
        assert!(b.arrive(MachineId(1), 1));
        // Recovery re-admits it: epoch 2 needs all three again.
        b.on_machine_up(MachineId(2));
        assert!(!b.arrive(MachineId(0), 2));
        assert!(!b.arrive(MachineId(2), 2));
        assert!(b.arrive(MachineId(1), 2));
    }

    #[test]
    fn death_of_an_already_arrived_machine_discards_its_arrival() {
        let mut b = BarrierMaster::new(2);
        assert!(!b.arrive(MachineId(1), 0));
        // It arrived, then died: its arrival must not stand (its state is
        // gone; it will re-arrive only after recovery).
        assert!(!b.on_machine_down(MachineId(1)), "survivor still missing");
        assert!(b.arrive(MachineId(0), 0), "lone survivor releases the epoch");
        assert!(!b.on_machine_down(MachineId(1)), "duplicate death is a no-op");
    }

    #[test]
    fn many_epochs() {
        let mut b = BarrierMaster::new(4);
        for epoch in 0..100 {
            for m in 0..3 {
                assert!(!b.arrive(MachineId(m), epoch));
            }
            assert!(b.arrive(MachineId(3), epoch));
        }
        assert_eq!(b.epoch(), 100);
    }
}
