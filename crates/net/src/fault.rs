//! Deterministic fault injection for the simulated fabric.
//!
//! FoundationDB-style simulation testing works because the *simulator*
//! owns every failure: a seeded [`FaultPlan`] decides ahead of time which
//! machine dies when, whether it comes back, which channels drop or
//! partition — and the same plan replays the same faults. The fabric
//! mediates every delivery through the plan, so fault points are exact
//! (after the *n*-th delivery, not "roughly around then") and a failing
//! chaos seed reproduces.
//!
//! Semantics of a **kill**:
//!
//! - the machine's endpoint starts returning
//!   [`RecvError::MachineDown`](crate::RecvError::MachineDown) and its
//!   inbox is drained on the floor (volatile state is gone);
//! - everything in flight to or from it is dropped, and all later sends
//!   to/from it are dropped while it stays dead (messages "on the wire"
//!   from a previous incarnation can never be delivered after the fabric
//!   announced the death — the incarnation tag enforces it);
//! - every surviving machine is notified with a [`K_DOWN`] control
//!   envelope carrying the victim, whether a restart is scheduled, and
//!   the fault *era* (total kills so far — the cluster-wide epoch the
//!   engines' recovery protocol is keyed on);
//! - an optional **restart** marks the machine alive again with an empty
//!   inbox and delivers a [`K_UP`] envelope *to the reborn machine* so it
//!   learns the current era and rejoins recovery.
//!
//! A **transient partition** buffers (not drops — TCP would retransmit)
//! traffic between a machine group and its complement and releases it in
//! channel order when the partition heals. A **drop rate** discards a
//! deterministic, per-channel-seeded fraction of deliveries (fabric-level
//! chaos for transport tests; the engines assume reliable channels).
//!
//! All decisions are taken under one lock at the delivery point, so a
//! plan with [`FaultPlan::trace`] enabled records a single serialized
//! event log — the byte-identical trace the determinism tests pin.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::codec::Codec;

/// Reserved control kind: fabric → engines, "machine `m` is down".
/// Payload is a [`DownMsg`].
pub const K_DOWN: u16 = u16::MAX - 2;

/// Reserved control kind: fabric → reborn machine, "you are back".
/// Payload is an [`UpMsg`].
pub const K_UP: u16 = u16::MAX - 3;

/// Payload of a [`K_DOWN`] notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DownMsg {
    /// The machine that died.
    pub machine: u16,
    /// Whether the plan schedules a restart (recovery can wait for it).
    pub restart: bool,
    /// Fault era: total kills so far, including this one. The engines'
    /// recovery rounds are keyed on it.
    pub era: u32,
}

impl Codec for DownMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.machine.encode(buf);
        self.restart.encode(buf);
        self.era.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(DownMsg {
            machine: u16::decode(buf)?,
            restart: bool::decode(buf)?,
            era: u32::decode(buf)?,
        })
    }
}

/// Payload of a [`K_UP`] notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpMsg {
    /// The machine that restarted (always the receiver).
    pub machine: u16,
    /// Current fault era at restart time.
    pub era: u32,
}

impl Codec for UpMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.machine.encode(buf);
        self.era.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(UpMsg { machine: u16::decode(buf)?, era: u32::decode(buf)? })
    }
}

/// When a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// After this many envelope deliveries have been attempted cluster-wide
    /// (the deterministic trigger: exact under any thread interleaving of a
    /// fixed per-channel workload).
    Deliveries(u64),
    /// After this much wall-clock time since fabric creation (convenient,
    /// but only as deterministic as the run's timing).
    Elapsed(Duration),
}

/// One scheduled machine kill.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillSpec {
    /// Victim machine.
    pub machine: u16,
    /// When the kill fires.
    pub at: FaultTrigger,
    /// When (if ever) the machine restarts with empty state, **measured
    /// from the kill**: `Deliveries(k)` = after `k` further deliveries,
    /// `Elapsed(d)` = after a dead window of `d`.
    pub restart_at: Option<FaultTrigger>,
}

/// One transient network partition: traffic between `group` and its
/// complement is buffered from `from` until `until`, then released in
/// channel order (a long stall, as TCP would present it — not a loss).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// One side of the partition; the other side is the complement.
    pub group: Vec<u16>,
    /// When the partition starts.
    pub from: FaultTrigger,
    /// When it heals.
    pub until: FaultTrigger,
}

/// A seeded, declarative fault schedule for one [`crate::SimNet`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-channel drop streams.
    pub seed: u64,
    /// Scheduled kills.
    pub kills: Vec<KillSpec>,
    /// Scheduled transient partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Probability in `[0, 1)` that any given delivery is discarded
    /// (drawn from a deterministic per-channel stream). Engine protocols
    /// assume reliable channels; this knob is for transport-level chaos.
    pub drop_rate: f64,
    /// Record every fault-layer decision in an event log
    /// ([`crate::SimNet::fault_trace`]).
    pub record_trace: bool,
    /// Suppress the fabric's oracle `K_DOWN` notification to survivors on
    /// a kill. The victim itself is still notified (a dead thread blocked
    /// in a long receive must wake), but the *survivors* only learn of the
    /// death through lease expiry ([`crate::lease`]) — this demotes the
    /// oracle to a test-only ground truth the detector is checked against.
    pub no_oracle: bool,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Schedules a permanent kill (no restart — an engine run can only
    /// fail cleanly, since the victim's owned data is gone for good).
    pub fn kill(mut self, machine: u16, at: FaultTrigger) -> Self {
        self.kills.push(KillSpec { machine, at, restart_at: None });
        self
    }

    /// Schedules a kill with a later restart (the recoverable fault the
    /// engines' checkpoint rollback handles). `restart_at` is measured
    /// from the kill (the length of the dead window).
    pub fn kill_and_restart(mut self, machine: u16, at: FaultTrigger, restart_at: FaultTrigger) -> Self {
        self.kills.push(KillSpec { machine, at, restart_at: Some(restart_at) });
        self
    }

    /// Schedules a transient partition.
    pub fn partition(mut self, group: &[u16], from: FaultTrigger, until: FaultTrigger) -> Self {
        self.partitions.push(PartitionSpec { group: group.to_vec(), from, until });
        self
    }

    /// Sets the per-delivery drop probability.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "drop rate must be in [0, 1)");
        self.drop_rate = rate;
        self
    }

    /// Enables event-log recording.
    pub fn trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Disables the oracle `K_DOWN` notification to survivors — deaths
    /// must then be detected by lease expiry (see [`FaultPlan::no_oracle`]).
    pub fn without_oracle(mut self) -> Self {
        self.no_oracle = true;
        self
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.partitions.is_empty() && self.drop_rate == 0.0
    }

    /// Panics unless every referenced machine id is `< n`.
    pub fn validate(&self, n: usize) {
        for k in &self.kills {
            assert!((k.machine as usize) < n, "kill targets unknown machine {}", k.machine);
        }
        for p in &self.partitions {
            for &m in &p.group {
                assert!((m as usize) < n, "partition names unknown machine {m}");
            }
        }
    }
}

/// One entry of the recorded fault-layer event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// An envelope was handed to its destination inbox.
    Delivered {
        /// Sender.
        src: u16,
        /// Receiver.
        dst: u16,
        /// Message kind.
        kind: u16,
        /// Payload length.
        bytes: u32,
        /// Per-channel delivery sequence number.
        chan_seq: u64,
    },
    /// An envelope was discarded.
    Dropped {
        /// Sender.
        src: u16,
        /// Receiver.
        dst: u16,
        /// Message kind.
        kind: u16,
        /// Why it was discarded.
        reason: DropReason,
    },
    /// An envelope was buffered by an active partition.
    Held {
        /// Sender.
        src: u16,
        /// Receiver.
        dst: u16,
        /// Message kind.
        kind: u16,
    },
    /// A machine died.
    Killed {
        /// Victim.
        machine: u16,
        /// Fault era after the kill.
        era: u32,
    },
    /// A machine came back.
    Restarted {
        /// The reborn machine.
        machine: u16,
        /// Fault era at restart.
        era: u32,
    },
}

/// Why the fault layer discarded an envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Destination machine is dead.
    DstDead,
    /// Source machine is dead (or the envelope belongs to a previous
    /// incarnation of either endpoint).
    SrcDead,
    /// Lost to the configured drop rate.
    Random,
}

struct PendingPartition {
    spec: PartitionSpec,
    active: bool,
    done: bool,
}

/// A kill-relative [`FaultTrigger`] anchored to an absolute clock value.
#[derive(Clone, Copy, Debug)]
enum ResolvedTrigger {
    AtDeliveries(u64),
    AtTime(Instant),
}

/// An envelope buffered by an active partition, with the incarnations it
/// was sent under.
struct HeldMsg {
    env: crate::cluster::Envelope,
    src_inc: u32,
    dst_inc: u32,
}

/// The live fault state shared by every endpoint and the delivery thread.
/// All fault decisions are serialized under one lock (the determinism
/// anchor for the recorded trace).
pub(crate) struct FaultState {
    start: Instant,
    plan: FaultPlan,
    /// Total envelope delivery attempts so far (the `Deliveries` clock).
    deliveries: u64,
    /// Total kills so far (the fault era).
    era: u32,
    alive: Vec<bool>,
    /// Bumped at every kill of the machine; envelopes remember the
    /// incarnations they were sent under and stale ones are dropped.
    incarnation: Vec<u32>,
    restart_scheduled: Vec<bool>,
    kills: Vec<KillSpec>,
    /// Pending restarts, resolved to absolute triggers at kill time.
    restarts: Vec<(u16, ResolvedTrigger)>,
    partitions: Vec<PendingPartition>,
    held: VecDeque<HeldMsg>,
    /// Per-channel xorshift streams for drop decisions.
    chan_rng: Vec<u64>,
    /// Per-channel delivered-message counters (trace sequence numbers).
    chan_seq: Vec<u64>,
    trace: Vec<FaultEvent>,
    inboxes: Vec<crossbeam::channel::Sender<crate::cluster::Envelope>>,
    stats: std::sync::Arc<crate::cluster::NetStats>,
}

impl FaultState {
    pub(crate) fn new(
        plan: FaultPlan,
        n: usize,
        inboxes: Vec<crossbeam::channel::Sender<crate::cluster::Envelope>>,
        stats: std::sync::Arc<crate::cluster::NetStats>,
    ) -> Self {
        plan.validate(n);
        let kills = plan.kills.clone();
        let partitions = plan
            .partitions
            .iter()
            .map(|spec| PendingPartition { spec: spec.clone(), active: false, done: false })
            .collect();
        let chan_rng = (0..n * n)
            .map(|i| {
                // Distinct non-zero xorshift seed per (src, dst) channel.
                (plan.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
            })
            .collect();
        FaultState {
            // lint: allow(determinism) -- anchors wall-clock Elapsed triggers; deterministic plans use delivery-count triggers
            start: Instant::now(),
            deliveries: 0,
            era: 0,
            alive: vec![true; n],
            incarnation: vec![0; n],
            restart_scheduled: vec![false; n],
            kills,
            restarts: Vec::new(),
            partitions,
            held: VecDeque::new(),
            chan_rng,
            chan_seq: vec![0; n * n],
            trace: Vec::new(),
            plan,
            inboxes,
            stats,
        }
    }

    fn due(&self, t: &FaultTrigger, now: Instant) -> bool {
        match *t {
            FaultTrigger::Deliveries(n) => self.deliveries >= n,
            FaultTrigger::Elapsed(d) => now.duration_since(self.start) >= d,
        }
    }

    /// Fires every due event: kills, restarts, partition transitions.
    pub(crate) fn poll(&mut self, now: Instant) {
        // Kills.
        let mut i = 0;
        while i < self.kills.len() {
            if self.due(&self.kills[i].at, now) {
                let k = self.kills.swap_remove(i);
                self.fire_kill(k);
            } else {
                i += 1;
            }
        }
        // Restarts.
        let mut i = 0;
        while i < self.restarts.len() {
            let fire = match self.restarts[i].1 {
                ResolvedTrigger::AtDeliveries(n) => self.deliveries >= n,
                ResolvedTrigger::AtTime(t) => now >= t,
            };
            if fire {
                let (m, _) = self.restarts.swap_remove(i);
                self.fire_restart(m);
            } else {
                i += 1;
            }
        }
        // Partitions.
        let mut flush = false;
        for i in 0..self.partitions.len() {
            let (from, until) = (self.partitions[i].spec.from, self.partitions[i].spec.until);
            if !self.partitions[i].done && !self.partitions[i].active && self.due(&from, now) {
                self.partitions[i].active = true;
            }
            if self.partitions[i].active && self.due(&until, now) {
                self.partitions[i].active = false;
                self.partitions[i].done = true;
                flush = true;
            }
        }
        if flush {
            self.flush_held();
        }
    }

    fn fire_kill(&mut self, k: KillSpec) {
        let m = k.machine as usize;
        if !self.alive[m] {
            return; // already dead; ignore the duplicate
        }
        self.alive[m] = false;
        self.incarnation[m] += 1;
        self.era += 1;
        self.restart_scheduled[m] = k.restart_at.is_some();
        if let Some(at) = k.restart_at {
            // Anchor the kill-relative restart trigger to now.
            let resolved = match at {
                FaultTrigger::Deliveries(n) => ResolvedTrigger::AtDeliveries(self.deliveries + n),
                // lint: allow(determinism) -- Elapsed restarts are wall-clock by contract; deterministic plans use delivery-count triggers
                FaultTrigger::Elapsed(d) => ResolvedTrigger::AtTime(Instant::now() + d),
            };
            self.restarts.push((k.machine, resolved));
        }
        // Partition buffers to/from the victim die with it.
        self.held.retain(|h| {
            h.env.src.index() != m && h.env.dst.index() != m
        });
        if self.plan.record_trace {
            self.trace.push(FaultEvent::Killed { machine: k.machine, era: self.era });
        }
        // Tell every survivor. The injection happens under the fault lock,
        // after every envelope the victim ever got delivered and before any
        // later delivery can be processed — so "messages from m after
        // K_DOWN" is impossible by construction.
        //
        // The victim gets the notification too: a thread already *blocked*
        // in a long `recv_timeout` when the kill fires would otherwise
        // sleep the full timeout (nothing else ever lands in a dead
        // inbox). Receiving a K_DOWN about yourself means "you are dead";
        // any recv the victim makes while dead drains it harmlessly.
        //
        // Under `no_oracle` the survivor notifications are suppressed —
        // only the victim's own wake-up stays — so survivors must detect
        // the death by lease expiry, exactly as they would over TCP.
        let msg = DownMsg { machine: k.machine, restart: k.restart_at.is_some(), era: self.era };
        let payload = crate::codec::encode_to_bytes(&msg);
        for j in 0..self.inboxes.len() {
            if self.plan.no_oracle && j != m {
                continue;
            }
            if j == m || self.alive[j] {
                let _ = self.inboxes[j].send(crate::cluster::Envelope {
                    src: graphlab_graph::MachineId::from(m),
                    dst: graphlab_graph::MachineId::from(j),
                    kind: K_DOWN,
                    payload: payload.clone(),
                });
            }
        }
    }

    fn fire_restart(&mut self, machine: u16) {
        let m = machine as usize;
        if self.alive[m] {
            return;
        }
        self.alive[m] = true;
        self.restart_scheduled[m] = false;
        if self.plan.record_trace {
            self.trace.push(FaultEvent::Restarted { machine, era: self.era });
        }
        // The reborn machine's inbox was drained while dead; the first
        // thing it sees is its own K_UP carrying the current era.
        let msg = UpMsg { machine, era: self.era };
        let _ = self.inboxes[m].send(crate::cluster::Envelope {
            src: graphlab_graph::MachineId::from(m),
            dst: graphlab_graph::MachineId::from(m),
            kind: K_UP,
            payload: crate::codec::encode_to_bytes(&msg),
        });
    }

    fn partitioned(&self, src: usize, dst: usize) -> bool {
        self.partitions.iter().any(|p| {
            p.active && {
                let a = p.spec.group.iter().any(|&g| g as usize == src);
                let b = p.spec.group.iter().any(|&g| g as usize == dst);
                a != b
            }
        })
    }

    /// Re-attempts every held envelope whose channel is no longer
    /// partitioned, in arrival order (per-channel FIFO is preserved:
    /// holds and releases both happen under this lock).
    fn flush_held(&mut self) {
        let held = std::mem::take(&mut self.held);
        for h in held {
            let (s, d) = (h.env.src.index(), h.env.dst.index());
            if !self.alive[d] || h.dst_inc != self.incarnation[d] {
                self.note_drop(&h.env, DropReason::DstDead);
            } else if !self.alive[s] || h.src_inc != self.incarnation[s] {
                self.note_drop(&h.env, DropReason::SrcDead);
            } else if self.partitioned(s, d) {
                self.held.push_back(h);
            } else {
                self.finish_delivery(h.env);
            }
        }
    }

    /// The delivery point: every engine envelope lands here exactly once
    /// (zero-latency sends inline, delayed sends at heap pop, held sends
    /// at partition heal — the latter without re-advancing the clock).
    pub(crate) fn on_deliver(
        &mut self,
        env: crate::cluster::Envelope,
        src_inc: u32,
        dst_inc: u32,
        now: Instant,
    ) {
        self.poll(now);
        self.deliveries += 1;
        self.check_and_route(env, src_inc, dst_inc);
        // Delivery-count triggers land *after* the envelope that advanced
        // the clock, so "kill after n deliveries" lets the n-th through.
        self.poll(now);
    }

    /// Applies the current fault state to one envelope: drop, hold, or
    /// deliver.
    fn check_and_route(&mut self, env: crate::cluster::Envelope, src_inc: u32, dst_inc: u32) {
        let (s, d) = (env.src.index(), env.dst.index());
        if !self.alive[d] || dst_inc != self.incarnation[d] {
            self.note_drop(&env, DropReason::DstDead);
            return;
        }
        if !self.alive[s] || src_inc != self.incarnation[s] {
            self.note_drop(&env, DropReason::SrcDead);
            return;
        }
        if self.partitioned(s, d) {
            if self.plan.record_trace {
                self.trace.push(FaultEvent::Held { src: env.src.0, dst: env.dst.0, kind: env.kind });
            }
            self.held.push_back(HeldMsg { env, src_inc, dst_inc });
            return;
        }
        if self.plan.drop_rate > 0.0 {
            let n = self.alive.len();
            let state = &mut self.chan_rng[s * n + d];
            let r = crate::latency::xorshift64(state);
            let frac = (r >> 11) as f64 / (1u64 << 53) as f64;
            if frac < self.plan.drop_rate {
                self.note_drop(&env, DropReason::Random);
                return;
            }
        }
        self.finish_delivery(env);
    }

    fn note_drop(&mut self, env: &crate::cluster::Envelope, reason: DropReason) {
        if self.plan.record_trace {
            self.trace.push(FaultEvent::Dropped {
                src: env.src.0,
                dst: env.dst.0,
                kind: env.kind,
                reason,
            });
        }
    }

    fn finish_delivery(&mut self, env: crate::cluster::Envelope) {
        let n = self.alive.len();
        let chan = env.src.index() * n + env.dst.index();
        self.chan_seq[chan] += 1;
        if self.plan.record_trace {
            self.trace.push(FaultEvent::Delivered {
                src: env.src.0,
                dst: env.dst.0,
                kind: env.kind,
                bytes: env.payload.len() as u32,
                chan_seq: self.chan_seq[chan],
            });
        }
        crate::cluster::deliver(&self.inboxes, &self.stats, env);
    }

    pub(crate) fn is_alive(&self, m: usize) -> bool {
        self.alive[m]
    }

    pub(crate) fn incarnations(&self, src: usize, dst: usize) -> (u32, u32) {
        (self.incarnation[src], self.incarnation[dst])
    }

    pub(crate) fn restart_scheduled(&self, m: usize) -> bool {
        self.restart_scheduled[m]
    }

    pub(crate) fn take_trace(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{RecvError, SimNet};
    use crate::codec::decode_from;
    use crate::latency::LatencyModel;
    use graphlab_graph::MachineId;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn kill_notifies_survivors_and_fences_the_victim() {
        let plan = FaultPlan::seeded(7).kill(2, FaultTrigger::Deliveries(2));
        let (_net, eps) = SimNet::with_faults(3, LatencyModel::ZERO, 1, plan);
        eps[0].send(MachineId(1), 5, Bytes::from_static(b"a")); // delivery 1
        eps[0].send(MachineId(1), 6, Bytes::from_static(b"b")); // delivery 2 -> kill fires
        assert_eq!(eps[1].recv_timeout(T).unwrap().kind, 5);
        assert_eq!(eps[1].recv_timeout(T).unwrap().kind, 6);
        // Both survivors got the K_DOWN notification.
        for ep in [&eps[0], &eps[1]] {
            let env = ep.recv_timeout(T).unwrap();
            assert_eq!(env.kind, K_DOWN);
            let msg: DownMsg = decode_from(env.payload).unwrap();
            assert_eq!(msg, DownMsg { machine: 2, restart: false, era: 1 });
        }
        // The victim is fenced: receives report MachineDown (no restart
        // scheduled), sends to it vanish, sends from it vanish.
        assert_eq!(eps[2].recv_timeout(Duration::from_millis(10)).unwrap_err(), RecvError::MachineDown);
        assert_eq!(eps[2].self_death(), Some(false));
        eps[0].send(MachineId(2), 9, Bytes::new());
        eps[2].send(MachineId(0), 9, Bytes::new());
        assert_eq!(eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err(), RecvError::Timeout);
    }

    #[test]
    fn restart_delivers_up_marker_and_reopens_traffic() {
        let plan = FaultPlan::seeded(7)
            .kill_and_restart(1, FaultTrigger::Deliveries(1), FaultTrigger::Deliveries(2));
        let (_net, eps) = SimNet::with_faults(2, LatencyModel::ZERO, 1, plan);
        eps[0].send(MachineId(1), 1, Bytes::new()); // delivery 1 -> kill
        assert_eq!(eps[1].recv_timeout(Duration::from_millis(10)).unwrap_err(), RecvError::MachineDown);
        assert_eq!(eps[1].self_death(), Some(true), "restart is scheduled");
        eps[0].send(MachineId(1), 2, Bytes::new()); // delivery 2: dropped (dead)
        eps[0].send(MachineId(1), 3, Bytes::new()); // delivery 3 = kill + 2 -> restart fires
        // First thing the reborn machine sees is its own K_UP with the era.
        let env = eps[1].recv_timeout(T).unwrap();
        assert_eq!(env.kind, K_UP);
        let msg: UpMsg = decode_from(env.payload).unwrap();
        assert_eq!(msg, UpMsg { machine: 1, era: 1 });
        // Traffic flows again.
        eps[0].send(MachineId(1), 4, Bytes::new());
        assert_eq!(eps[1].recv_timeout(T).unwrap().kind, 4);
        // The K_DOWN the survivor got carries restart = true.
        let down = eps[0].recv_timeout(T).unwrap();
        assert_eq!(down.kind, K_DOWN);
        let d: DownMsg = decode_from(down.payload).unwrap();
        assert!(d.restart);
    }

    #[test]
    fn in_flight_messages_from_a_previous_incarnation_never_arrive() {
        // 20 ms latency, kill after 5 ms, 10 ms dead window: the message
        // is on the wire when the machine dies and is due (~20 ms) *after*
        // the victim is alive again (~15 ms) — the incarnation check still
        // fences the old life.
        let plan = FaultPlan::seeded(3)
            .kill_and_restart(
                1,
                FaultTrigger::Elapsed(Duration::from_millis(5)),
                FaultTrigger::Elapsed(Duration::from_millis(10)),
            );
        let (net, eps) = SimNet::with_faults(2, LatencyModel::fixed(Duration::from_millis(20)), 1, plan);
        eps[0].send(MachineId(1), 42, Bytes::from_static(b"stale"));
        // Wait out the dead window.
        std::thread::sleep(Duration::from_millis(15));
        // Drain the dead-window state: the victim sees K_UP, then nothing.
        let mut kinds = Vec::new();
        let deadline = Instant::now() + Duration::from_millis(200);
        while Instant::now() < deadline {
            match eps[1].recv_timeout(Duration::from_millis(20)) {
                Ok(env) => kinds.push(env.kind),
                Err(RecvError::MachineDown) => continue,
                Err(_) => {}
            }
        }
        assert_eq!(kinds, vec![K_UP], "stale incarnation message leaked: {kinds:?}");
        assert_eq!(net.stats().machine(MachineId(1)).msgs_received, 0);
    }

    #[test]
    fn transient_partition_buffers_and_releases_in_order() {
        let plan = FaultPlan::seeded(1).partition(
            &[0],
            FaultTrigger::Deliveries(0),
            FaultTrigger::Deliveries(4),
        );
        let (_net, eps) = SimNet::with_faults(2, LatencyModel::ZERO, 1, plan);
        for k in 0..4u16 {
            eps[0].send(MachineId(1), k, Bytes::new());
        }
        // Deliveries 1..=3 are held; the 4th advance heals the partition
        // and flushes everything in channel order.
        for k in 0..4u16 {
            let env = eps[1].recv_timeout(T).unwrap();
            assert_eq!(env.kind, k, "partition flush must preserve FIFO");
        }
    }

    #[test]
    fn partition_does_not_hold_intra_group_traffic() {
        let plan = FaultPlan::seeded(1).partition(
            &[0, 1],
            FaultTrigger::Deliveries(0),
            FaultTrigger::Deliveries(1_000),
        );
        let (_net, eps) = SimNet::with_faults(3, LatencyModel::ZERO, 1, plan);
        eps[0].send(MachineId(1), 7, Bytes::new()); // same side: flows
        eps[0].send(MachineId(2), 8, Bytes::new()); // across: held
        assert_eq!(eps[1].recv_timeout(T).unwrap().kind, 7);
        assert_eq!(eps[2].recv_timeout(Duration::from_millis(10)).unwrap_err(), RecvError::Timeout);
    }

    /// Runs a fixed single-threaded send script under `plan` and returns
    /// the recorded fault trace.
    fn scripted_trace(plan: FaultPlan) -> Vec<FaultEvent> {
        let (net, eps) = SimNet::with_faults(3, LatencyModel::ZERO, 1, plan.trace());
        for round in 0..40u16 {
            eps[0].send(MachineId(1), round, Bytes::from(vec![round as u8; 8]));
            eps[1].send(MachineId(2), round, Bytes::from(vec![round as u8; 4]));
            eps[2].send(MachineId(0), round, Bytes::new());
        }
        net.fault_trace()
    }

    #[test]
    fn same_seed_same_plan_gives_byte_identical_trace() {
        // The chaos determinism pin: kills, restarts and per-channel drop
        // decisions replay exactly for the same seed and send script.
        let plan = FaultPlan::seeded(0xC0FFEE)
            .kill_and_restart(2, FaultTrigger::Deliveries(30), FaultTrigger::Deliveries(60))
            .drop_rate(0.25);
        let a = scripted_trace(plan.clone());
        let b = scripted_trace(plan);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must replay the same delivery/kill trace");
        // The trace actually contains the interesting events.
        assert!(a.iter().any(|e| matches!(e, FaultEvent::Killed { machine: 2, .. })));
        assert!(a.iter().any(|e| matches!(e, FaultEvent::Restarted { machine: 2, .. })));
        assert!(a.iter().any(|e| matches!(e, FaultEvent::Dropped { reason: DropReason::Random, .. })));
        assert!(a.iter().any(|e| matches!(e, FaultEvent::Delivered { .. })));
    }

    #[test]
    fn different_drop_seed_changes_the_pattern() {
        let mk = |seed| {
            scripted_trace(FaultPlan::seeded(seed).drop_rate(0.3))
                .iter()
                .filter(|e| matches!(e, FaultEvent::Dropped { .. }))
                .count()
        };
        let drops: Vec<usize> = (0..8).map(mk).collect();
        assert!(drops.iter().any(|&d| d > 0), "a 30% drop rate must drop something");
        assert!(drops.iter().any(|&d| d < 120), "a 30% drop rate must not drop everything");
    }

    #[test]
    fn plan_validation_rejects_unknown_machines() {
        let plan = FaultPlan::seeded(1).kill(9, FaultTrigger::Deliveries(1));
        assert!(std::panic::catch_unwind(|| plan.validate(3)).is_err());
    }
}
