//! Transport-conformance suite: the contract both fabric backends must
//! satisfy, run against each of them through one generic harness.
//!
//! The seam ([`Endpoint`]/[`Net`]) promises the engines identical
//! observable semantics regardless of backend:
//!
//! - **per-channel FIFO**: messages from A to B arrive in send order,
//!   whatever their sizes and whatever other channels are doing;
//! - **receive semantics**: `recv_timeout` returns `Timeout` on an empty
//!   inbox (after roughly the requested wait), `try_recv` returns
//!   `Timeout` immediately;
//! - **self-sends** deliver through the local inbox and are charged zero
//!   network traffic;
//! - **graceful shutdown drains**: everything sent before a clean
//!   shutdown is still received afterwards;
//! - **stats charging**: sends are charged to the sender's row at the
//!   send point, receives to the receiver's row at actual delivery, both
//!   at `HEADER_BYTES + payload` per envelope.
//!
//! Every test body is written once against the seam and executed per
//! backend: SimNet at zero latency, SimNet under a jittery latency model
//! (delivery thread + clamp paths), and TcpNet over real localhost
//! sockets spanning genuinely concurrent mesh setup.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;
use graphlab_graph::MachineId;
use graphlab_net::cluster::HEADER_BYTES;
use graphlab_net::{
    Endpoint, LatencyModel, Net, RecvError, SimNet, TcpConfig, TcpNet,
};

#[derive(Clone, Copy, Debug)]
enum Backend {
    SimZero,
    SimLatency,
    Tcp,
}

const BACKENDS: [Backend; 3] = [Backend::SimZero, Backend::SimLatency, Backend::Tcp];

/// Distinguishes clusters within one test process so a straggling socket
/// from an earlier cluster can never pass a later cluster's handshake.
static NEXT_RUN: AtomicU64 = AtomicU64::new(1);

/// Reserves `n` distinct localhost ports by binding ephemeral listeners,
/// then releasing them for the workers to re-bind (the parent/worker
/// port-allocation dance the spawn harness uses).
fn alloc_ports(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> =
        (0..n).map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0")).collect();
    listeners
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().expect("local addr").port()))
        .collect()
}

/// Builds an `n`-machine cluster on the given backend. Callers must drop
/// the endpoints before the nets (the sim fabric's delivery thread only
/// exits once every endpoint is gone) — which `run_on` guarantees.
fn cluster(backend: Backend, n: usize) -> (Vec<Net>, Vec<Endpoint>) {
    match backend {
        Backend::SimZero => {
            let (net, eps) = SimNet::new(n, LatencyModel::ZERO);
            (vec![Net::Sim(net)], eps.into_iter().map(Into::into).collect())
        }
        Backend::SimLatency => {
            let model = LatencyModel {
                fixed: Duration::from_micros(150),
                per_kib: Duration::from_micros(2),
                jitter: Duration::from_micros(80),
            };
            let (net, eps) = SimNet::with_seed(n, model, 0xC0FFEE);
            (vec![Net::Sim(net)], eps.into_iter().map(Into::into).collect())
        }
        Backend::Tcp => {
            let peers = alloc_ports(n);
            let run_id = std::process::id() as u64 ^ (NEXT_RUN.fetch_add(1, Ordering::Relaxed) << 32);
            let handles: Vec<_> = (0..n)
                .map(|m| {
                    let cfg = TcpConfig::new(MachineId(m as u16), peers.clone(), run_id);
                    std::thread::spawn(move || TcpNet::connect(&cfg).expect("tcp mesh"))
                })
                .collect();
            let mut nets = Vec::with_capacity(n);
            let mut eps = Vec::with_capacity(n);
            for h in handles {
                let (net, ep) = h.join().expect("mesh thread");
                nets.push(Net::Tcp(net));
                eps.push(ep.into());
            }
            (nets, eps)
        }
    }
}

/// Runs `body` once per backend with a fresh `n`-machine cluster,
/// tearing down endpoints-before-nets.
fn run_on(n: usize, body: impl Fn(Backend, &mut Vec<Endpoint>)) {
    for backend in BACKENDS {
        let (nets, mut eps) = cluster(backend, n);
        body(backend, &mut eps);
        drop(eps);
        drop(nets);
    }
}

/// Payload whose content encodes its sequence number, at a size that
/// cycles through empty / small / multi-KiB frames.
fn seq_payload(i: u32) -> Bytes {
    let len = match i % 4 {
        0 => 0,
        1 => 11,
        2 => 700,
        _ => 5000,
    };
    let mut v = i.to_le_bytes().to_vec();
    v.resize(4 + len, (i % 251) as u8);
    Bytes::from(v)
}

fn seq_of(env: &graphlab_net::Envelope) -> u32 {
    u32::from_le_bytes(env.payload[..4].try_into().expect("seq prefix"))
}

#[test]
fn per_channel_fifo_with_mixed_sizes() {
    run_on(2, |backend, eps| {
        const N: u32 = 200;
        for i in 0..N {
            eps[0].send(MachineId(1), (i % 7) as u16, seq_payload(i));
        }
        for want in 0..N {
            let env = eps[1]
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("{backend:?}: lost message {want}: {e:?}"));
            assert_eq!(env.src, MachineId(0), "{backend:?}");
            assert_eq!(seq_of(&env), want, "{backend:?}: reordered");
            assert_eq!(env.kind, (want % 7) as u16, "{backend:?}: kind survived");
        }
    });
}

#[test]
fn concurrent_senders_preserve_each_channel() {
    run_on(3, |backend, eps| {
        const PER: u32 = 150;
        let e2 = eps.pop().expect("ep2");
        let e1 = eps.pop().expect("ep1");
        let senders: Vec<_> = [e1, e2]
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    for i in 0..PER {
                        ep.send(MachineId(0), 9, seq_payload(i));
                    }
                    ep // keep alive until both have sent
                })
            })
            .collect();
        let mut next = [0u32; 3];
        for _ in 0..2 * PER {
            let env = eps[0].recv_timeout(Duration::from_secs(10)).expect("all arrive");
            let src = env.src.index();
            assert_eq!(seq_of(&env), next[src], "{backend:?}: channel {src} reordered");
            next[src] += 1;
        }
        for s in senders {
            drop(s.join().expect("sender thread"));
        }
        assert_eq!(next[1], PER, "{backend:?}");
        assert_eq!(next[2], PER, "{backend:?}");
    });
}

#[test]
fn recv_timeout_and_try_recv_semantics() {
    run_on(2, |backend, eps| {
        // Empty inbox: try_recv is an immediate Timeout.
        assert!(
            matches!(eps[1].try_recv(), Err(RecvError::Timeout)),
            "{backend:?}: try_recv on empty inbox"
        );
        // recv_timeout waits roughly the requested time, then Timeout.
        let t0 = Instant::now();
        let r = eps[1].recv_timeout(Duration::from_millis(30));
        assert!(matches!(r, Err(RecvError::Timeout)), "{backend:?}: {r:?}");
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "{backend:?}: returned early ({waited:?})");
        assert!(waited < Duration::from_secs(5), "{backend:?}: overslept ({waited:?})");
        // The wait was charged to the seam's net-wait counter.
        assert!(eps[1].net_wait() >= Duration::from_millis(25), "{backend:?}: net-wait uncharged");
        // A message that then arrives is delivered, not swallowed.
        eps[0].send(MachineId(1), 3, seq_payload(0));
        let env = eps[1].recv_timeout(Duration::from_secs(10)).expect("delivered");
        assert_eq!(env.kind, 3, "{backend:?}");
    });
}

#[test]
fn self_sends_deliver_locally_and_are_free() {
    run_on(2, |backend, eps| {
        eps[0].send(MachineId(0), 42, Bytes::from_static(b"loopback"));
        let env = eps[0].recv_timeout(Duration::from_secs(5)).expect("self-send delivers");
        assert_eq!(env.src, MachineId(0), "{backend:?}");
        assert_eq!(env.kind, 42, "{backend:?}");
        assert_eq!(&env.payload[..], b"loopback", "{backend:?}");
        let row = eps[0].stats().machine(MachineId(0));
        assert_eq!(row.bytes_sent, 0, "{backend:?}: self-send charged send bytes");
        assert_eq!(row.msgs_sent, 0, "{backend:?}");
        assert_eq!(row.bytes_received, 0, "{backend:?}: self-send charged delivery");
        assert_eq!(row.msgs_received, 0, "{backend:?}");
    });
}

#[test]
fn graceful_shutdown_drains_in_flight_messages() {
    run_on(2, |backend, eps| {
        const N: u32 = 50;
        for i in 0..N {
            eps[0].send(MachineId(1), 5, seq_payload(i));
        }
        // Sender goes away cleanly right after its last send...
        let sender = eps.remove(0);
        drop(sender);
        // ...and the receiver still drains every message, in order.
        for want in 0..N {
            let env = eps[0]
                .recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|e| panic!("{backend:?}: dropped message {want} on shutdown: {e:?}"));
            assert_eq!(seq_of(&env), want, "{backend:?}");
        }
        // Nothing further arrives.
        assert!(
            matches!(eps[0].recv_timeout(Duration::from_millis(50)), Err(RecvError::Timeout)),
            "{backend:?}: phantom message after drain"
        );
    });
}

#[test]
fn stats_charge_sends_at_send_and_receives_at_delivery() {
    run_on(2, |backend, eps| {
        let payloads: [usize; 4] = [0, 13, 1024, 4096];
        let wire: u64 = payloads.iter().map(|&p| (HEADER_BYTES + p) as u64).sum();
        for &len in &payloads {
            eps[0].send(MachineId(1), 7, Bytes::from(vec![0xAB; len]));
        }
        // Send-side rows are charged at the send point, visible at once
        // from the sender's stats handle.
        let sent = eps[0].stats().machine(MachineId(0));
        assert_eq!(sent.msgs_sent, payloads.len() as u64, "{backend:?}");
        assert_eq!(sent.bytes_sent, wire, "{backend:?}: HEADER_BYTES + payload per envelope");
        // Receive-side rows are charged at actual delivery: after the
        // receiver has drained them, its stats handle shows them all.
        for _ in &payloads {
            eps[1].recv_timeout(Duration::from_secs(10)).expect("delivered");
        }
        let recvd = eps[1].stats().machine(MachineId(1));
        assert_eq!(recvd.msgs_received, payloads.len() as u64, "{backend:?}");
        assert_eq!(recvd.bytes_received, wire, "{backend:?}");
    });
}

#[test]
fn broadcast_reaches_every_other_machine() {
    run_on(4, |backend, eps| {
        eps[2].broadcast(11, &Bytes::from_static(b"to-all"));
        for (i, ep) in eps.iter().enumerate() {
            if i == 2 {
                assert!(
                    matches!(ep.try_recv(), Err(RecvError::Timeout)),
                    "{backend:?}: broadcast echoed to sender"
                );
                continue;
            }
            let env = ep.recv_timeout(Duration::from_secs(10)).expect("broadcast arrives");
            assert_eq!(env.src, MachineId(2), "{backend:?}");
            assert_eq!(env.kind, 11, "{backend:?}");
        }
    });
}
