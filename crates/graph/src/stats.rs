//! Summary statistics over data graphs, used by the Table 2 reproduction
//! ("Experiment input sizes") and the workload generators' self-reporting.

use crate::graph::DataGraph;

/// Structural summary of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Minimum combined (in+out) degree.
    pub min_degree: usize,
    /// Maximum combined degree.
    pub max_degree: usize,
    /// Mean combined degree.
    pub mean_degree: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn of<V, E>(graph: &DataGraph<V, E>) -> Self {
        let n = graph.num_vertices();
        let mut min_degree = usize::MAX;
        let mut max_degree = 0usize;
        let mut total = 0usize;
        for v in graph.vertices() {
            let d = graph.degree(v);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
            total += d;
        }
        if n == 0 {
            min_degree = 0;
        }
        GraphStats {
            vertices: n,
            edges: graph.num_edges(),
            min_degree,
            max_degree,
            mean_degree: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        }
    }

    /// Degree histogram in power-of-two buckets: entry `i` counts vertices
    /// with combined degree in `[2^i, 2^(i+1))` (entry 0 also counts degree
    /// 0). Used to eyeball power-law shape in the workload tests.
    pub fn degree_histogram_log2<V, E>(graph: &DataGraph<V, E>) -> Vec<usize> {
        let mut h: Vec<usize> = Vec::new();
        for v in graph.vertices() {
            let d = graph.degree(v);
            let bucket = if d <= 1 { 0 } else { (usize::BITS - 1 - d.leading_zeros()) as usize };
            if bucket >= h.len() {
                h.resize(bucket + 1, 0);
            }
            h[bucket] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ids::VertexId;

    #[test]
    fn stats_of_star() {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(());
        for _ in 0..4 {
            let l = b.add_vertex(());
            b.add_edge(hub, l, ()).unwrap();
        }
        let g = b.build();
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 4);
        assert!((s.mean_degree - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(g.degree(VertexId(0)), 4);
    }

    #[test]
    fn stats_of_empty() {
        let g: DataGraph<(), ()> = GraphBuilder::new().build();
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn log2_histogram() {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(());
        for _ in 0..7 {
            let l = b.add_vertex(());
            b.add_edge(hub, l, ()).unwrap();
        }
        let g = b.build();
        let h = GraphStats::degree_histogram_log2(&g);
        // hub has degree 7 -> bucket 2; leaves degree 1 -> bucket 0
        assert_eq!(h[0], 7);
        assert_eq!(h[2], 1);
    }
}
