//! Strongly-typed identifiers shared across the workspace.
//!
//! Identifiers are thin wrappers over small integers (see the perf-book
//! guidance on smaller integer types): vertex and edge ids are `u32`
//! (4 billion vertices/edges is far beyond the in-memory scale this
//! simulator targets), machine ids are `u16`.

use std::fmt;

/// Identifier of a vertex in a [`crate::DataGraph`].
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VertexId(pub u32);

/// Identifier of a *directed* edge in a [`crate::DataGraph`].
///
/// Edge ids are dense: a graph with `m` directed edges uses ids `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

/// Identifier of an *atom*: one part of the two-phase over-partitioning of
/// the data graph (§4.1). `k` atoms are created with `k ≫ #machines`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct AtomId(pub u32);

/// Identifier of a (simulated) physical machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MachineId(pub u16);

macro_rules! impl_id {
    ($t:ty, $prefix:literal) => {
        impl $t {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(VertexId, "v");
impl_id!(EdgeId, "e");
impl_id!(AtomId, "a");
impl_id!(MachineId, "m");

impl From<usize> for VertexId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        VertexId(v as u32)
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        EdgeId(v as u32)
    }
}

impl From<usize> for AtomId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize);
        AtomId(v as u32)
    }
}

impl From<usize> for MachineId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize);
        MachineId(v as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(EdgeId(7).to_string(), "e7");
        assert_eq!(AtomId(1).to_string(), "a1");
        assert_eq!(MachineId(0).to_string(), "m0");
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(VertexId::from(42usize).index(), 42);
        assert_eq!(EdgeId::from(9usize).index(), 9);
        assert_eq!(MachineId::from(3usize).index(), 3);
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(MachineId(0) < MachineId(5));
    }
}
