//! The data graph `G = (V, E, D)` (§3.1).
//!
//! The graph is *structurally static*: it is assembled once through a
//! [`GraphBuilder`] and never changes shape afterwards, while the vertex and
//! edge data remain mutable. This mirrors the paper's contract ("while the
//! graph data is mutable, the structure is static and cannot be changed
//! during execution").
//!
//! Internally the builder produces a CSR (compressed sparse row) layout with
//! three adjacency views per vertex:
//!
//! - out-edges `v → u`,
//! - in-edges `u → v`,
//! - the *combined* adjacency `N[v]` (both directions, sorted by neighbour
//!   id) that scopes (§3.2), lock plans (§4.2.2) and colouring (§4.2.1)
//!   operate on.

use std::fmt;

use crate::ids::{EdgeId, VertexId};

/// Direction of an edge relative to the vertex whose adjacency list it
/// appears in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeDir {
    /// The edge leaves this vertex (`v → nbr`).
    Out,
    /// The edge enters this vertex (`nbr → v`).
    In,
}

/// One entry of a vertex's combined adjacency list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NeighborEntry {
    /// The adjacent vertex.
    pub nbr: VertexId,
    /// The directed edge connecting the two vertices.
    pub edge: EdgeId,
    /// Whether `edge` leaves (`Out`) or enters (`In`) the owning vertex.
    pub dir: EdgeDir,
}

/// Errors raised while assembling a graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id that was never added.
    UnknownVertex(VertexId),
    /// Self edges are rejected: the GraphLab scope of `v` would alias the
    /// central vertex with one of its own neighbours, which breaks the
    /// locking protocols.
    SelfEdge(VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::SelfEdge(v) => write!(f, "self edge on {v} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Builder assembling the static structure plus initial data of a
/// [`DataGraph`].
pub struct GraphBuilder<V, E> {
    vertex_data: Vec<V>,
    edges: Vec<(VertexId, VertexId)>,
    edge_data: Vec<E>,
}

impl<V, E> Default for GraphBuilder<V, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, E> GraphBuilder<V, E> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder { vertex_data: Vec::new(), edges: Vec::new(), edge_data: Vec::new() }
    }

    /// Creates a builder with pre-reserved capacity.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            vertex_data: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            edge_data: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex carrying `data` and returns its id.
    pub fn add_vertex(&mut self, data: V) -> VertexId {
        let id = VertexId::from(self.vertex_data.len());
        self.vertex_data.push(data);
        id
    }

    /// Adds the directed edge `src → dst` carrying `data`.
    ///
    /// Parallel edges are permitted (they carry independent data); self
    /// edges are rejected.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, data: E) -> Result<EdgeId, GraphError> {
        if src == dst {
            return Err(GraphError::SelfEdge(src));
        }
        let n = self.vertex_data.len();
        for v in [src, dst] {
            if v.index() >= n {
                return Err(GraphError::UnknownVertex(v));
            }
        }
        let id = EdgeId::from(self.edges.len());
        self.edges.push((src, dst));
        self.edge_data.push(data);
        Ok(id)
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vertex_data.len()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the structure into an immutable-shape [`DataGraph`].
    pub fn build(self) -> DataGraph<V, E> {
        let n = self.vertex_data.len();
        let m = self.edges.len();

        // Combined adjacency: every directed edge contributes one entry to
        // each endpoint. Counting pass, then prefix sums, then a fill pass —
        // the standard two-pass CSR construction.
        let mut counts = vec![0u32; n + 1];
        for &(s, d) in &self.edges {
            counts[s.index() + 1] += 1;
            counts[d.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut entries = vec![
            NeighborEntry { nbr: VertexId(0), edge: EdgeId(0), dir: EdgeDir::Out };
            2 * m
        ];
        for (eidx, &(s, d)) in self.edges.iter().enumerate() {
            let e = EdgeId::from(eidx);
            let cs = cursor[s.index()] as usize;
            entries[cs] = NeighborEntry { nbr: d, edge: e, dir: EdgeDir::Out };
            cursor[s.index()] += 1;
            let cd = cursor[d.index()] as usize;
            entries[cd] = NeighborEntry { nbr: s, edge: e, dir: EdgeDir::In };
            cursor[d.index()] += 1;
        }
        // Sort each vertex's slice by (neighbour, edge) so lock plans and
        // deterministic iteration come for free.
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            entries[lo..hi].sort_unstable_by_key(|e| (e.nbr, e.edge));
        }

        DataGraph {
            vertex_data: self.vertex_data,
            edges: self.edges,
            edge_data: self.edge_data,
            adj_offsets: offsets,
            adj_entries: entries,
        }
    }
}

/// The GraphLab data graph: static directed structure plus mutable
/// user-defined vertex data `D_v` and edge data `D_{u→v}`.
pub struct DataGraph<V, E> {
    vertex_data: Vec<V>,
    edges: Vec<(VertexId, VertexId)>,
    edge_data: Vec<E>,
    /// CSR offsets into `adj_entries`, length `n + 1`.
    adj_offsets: Vec<u32>,
    /// Combined adjacency entries, `2m` total.
    adj_entries: Vec<NeighborEntry>,
}

impl<V, E> DataGraph<V, E> {
    /// Convenience constructor for an empty builder.
    pub fn builder() -> GraphBuilder<V, E> {
        GraphBuilder::new()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_data.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + '_ {
        (0..self.vertex_data.len()).map(VertexId::from)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::from)
    }

    /// The `(source, target)` endpoints of a directed edge.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.index()]
    }

    /// Immutable access to a vertex's data.
    #[inline]
    pub fn vertex_data(&self, v: VertexId) -> &V {
        &self.vertex_data[v.index()]
    }

    /// Mutable access to a vertex's data.
    #[inline]
    pub fn vertex_data_mut(&mut self, v: VertexId) -> &mut V {
        &mut self.vertex_data[v.index()]
    }

    /// Immutable access to an edge's data.
    #[inline]
    pub fn edge_data(&self, e: EdgeId) -> &E {
        &self.edge_data[e.index()]
    }

    /// Mutable access to an edge's data.
    #[inline]
    pub fn edge_data_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edge_data[e.index()]
    }

    /// The combined adjacency `N[v]`: every edge incident to `v` in either
    /// direction, sorted by `(neighbour, edge)`.
    #[inline]
    pub fn adj(&self, v: VertexId) -> &[NeighborEntry] {
        let lo = self.adj_offsets[v.index()] as usize;
        let hi = self.adj_offsets[v.index() + 1] as usize;
        &self.adj_entries[lo..hi]
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj(v).len()
    }

    /// Out-edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = NeighborEntry> + '_ {
        self.adj(v).iter().copied().filter(|e| e.dir == EdgeDir::Out)
    }

    /// In-edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = NeighborEntry> + '_ {
        self.adj(v).iter().copied().filter(|e| e.dir == EdgeDir::In)
    }

    /// The distinct neighbours of `v` (parallel edges deduplicated).
    pub fn distinct_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let adj = self.adj(v);
        adj.iter().enumerate().filter_map(move |(i, e)| {
            if i == 0 || adj[i - 1].nbr != e.nbr {
                Some(e.nbr)
            } else {
                None
            }
        })
    }

    /// Consumes the graph and returns the raw data columns
    /// `(vertex_data, edge_data)`.
    pub fn into_data(self) -> (Vec<V>, Vec<E>) {
        (self.vertex_data, self.edge_data)
    }

    /// Borrow all vertex data as a slice (index = vertex id).
    pub fn vertex_data_slice(&self) -> &[V] {
        &self.vertex_data
    }

    /// Borrow all edge data as a slice (index = edge id).
    pub fn edge_data_slice(&self) -> &[E] {
        &self.edge_data
    }

    /// Applies `f` to every vertex's data.
    pub fn map_vertex_data<V2>(self, f: impl FnMut(VertexId, V) -> V2) -> DataGraph<V2, E> {
        let mut f = f;
        DataGraph {
            vertex_data: self
                .vertex_data
                .into_iter()
                .enumerate()
                .map(|(i, v)| f(VertexId::from(i), v))
                .collect(),
            edges: self.edges,
            edge_data: self.edge_data,
            adj_offsets: self.adj_offsets,
            adj_entries: self.adj_entries,
        }
    }
}

impl<V, E> std::fmt::Debug for DataGraph<V, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataGraph")
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .finish_non_exhaustive()
    }
}

impl<V: Clone, E: Clone> Clone for DataGraph<V, E> {
    fn clone(&self) -> Self {
        DataGraph {
            vertex_data: self.vertex_data.clone(),
            edges: self.edges.clone(),
            edge_data: self.edge_data.clone(),
            adj_offsets: self.adj_offsets.clone(),
            adj_entries: self.adj_entries.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DataGraph<u32, &'static str> {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i * 10)).collect();
        b.add_edge(v[0], v[1], "01").unwrap();
        b.add_edge(v[0], v[2], "02").unwrap();
        b.add_edge(v[1], v[3], "13").unwrap();
        b.add_edge(v[2], v[3], "23").unwrap();
        b.build()
    }

    #[test]
    fn builds_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(3)), 2);
    }

    #[test]
    fn adjacency_has_both_directions() {
        let g = diamond();
        let a1: Vec<_> = g.adj(VertexId(1)).to_vec();
        assert_eq!(a1.len(), 2);
        assert_eq!(a1[0].nbr, VertexId(0));
        assert_eq!(a1[0].dir, EdgeDir::In);
        assert_eq!(a1[1].nbr, VertexId(3));
        assert_eq!(a1[1].dir, EdgeDir::Out);
    }

    #[test]
    fn adjacency_sorted_by_neighbor() {
        let g = diamond();
        for v in g.vertices() {
            let adj = g.adj(v);
            assert!(adj.windows(2).all(|w| (w[0].nbr, w[0].edge) <= (w[1].nbr, w[1].edge)));
        }
    }

    #[test]
    fn out_and_in_edges_partition_adj() {
        let g = diamond();
        for v in g.vertices() {
            let outs = g.out_edges(v).count();
            let ins = g.in_edges(v).count();
            assert_eq!(outs + ins, g.degree(v));
        }
        assert_eq!(g.out_edges(VertexId(0)).count(), 2);
        assert_eq!(g.in_edges(VertexId(3)).count(), 2);
    }

    #[test]
    fn self_edge_rejected() {
        let mut b = GraphBuilder::<(), ()>::new();
        let v = b.add_vertex(());
        assert_eq!(b.add_edge(v, v, ()), Err(GraphError::SelfEdge(v)));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut b = GraphBuilder::<(), ()>::new();
        let v = b.add_vertex(());
        assert_eq!(
            b.add_edge(v, VertexId(9), ()),
            Err(GraphError::UnknownVertex(VertexId(9)))
        );
    }

    #[test]
    fn parallel_edges_keep_distinct_data() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(());
        let c = b.add_vertex(());
        let e1 = b.add_edge(a, c, 1).unwrap();
        let e2 = b.add_edge(a, c, 2).unwrap();
        let g = b.build();
        assert_eq!(*g.edge_data(e1), 1);
        assert_eq!(*g.edge_data(e2), 2);
        assert_eq!(g.distinct_neighbors(a).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn data_is_mutable_structure_is_not() {
        let mut g = diamond();
        *g.vertex_data_mut(VertexId(2)) = 99;
        assert_eq!(*g.vertex_data(VertexId(2)), 99);
        *g.edge_data_mut(EdgeId(0)) = "changed";
        assert_eq!(*g.edge_data(EdgeId(0)), "changed");
    }

    #[test]
    fn edge_endpoints_match_insertion() {
        let g = diamond();
        assert_eq!(g.edge_endpoints(EdgeId(0)), (VertexId(0), VertexId(1)));
        assert_eq!(g.edge_endpoints(EdgeId(3)), (VertexId(2), VertexId(3)));
    }

    #[test]
    fn map_vertex_data_preserves_structure() {
        let g = diamond();
        let g2 = g.map_vertex_data(|v, d| (v.0, d as f64));
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(*g2.vertex_data(VertexId(3)), (3, 30.0));
    }
}
