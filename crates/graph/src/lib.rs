//! # graphlab-graph
//!
//! The *data graph* layer of the Distributed GraphLab reproduction
//! (Low et al., VLDB 2012, §3.1).
//!
//! The data graph `G = (V, E, D)` is a directed graph container that manages
//! user-defined, mutable data attached to every vertex (`D_v`) and every
//! directed edge (`D_{u→v}`), while the *structure* of the graph is static
//! and cannot change during execution.
//!
//! This crate provides:
//!
//! - strongly-typed identifiers ([`VertexId`], [`EdgeId`], [`AtomId`],
//!   [`MachineId`]) shared across the workspace,
//! - [`DataGraph`] and [`GraphBuilder`]: a compressed sparse row (CSR)
//!   representation with a combined (both-direction) adjacency view that
//!   scopes and lock planning are built on,
//! - [`ConsistencyModel`] and the lock requirements each model induces
//!   (§3.4, Fig. 2),
//! - graph colouring heuristics used by the chromatic engine (§4.2.1):
//!   first-order greedy colouring for edge consistency and second-order
//!   colouring for full consistency.

pub mod coloring;
pub mod consistency;
pub mod graph;
pub mod ids;
pub mod stats;

pub use coloring::{greedy_coloring, second_order_coloring, verify_coloring, Coloring};
pub use consistency::{ConsistencyModel, LockType};
pub use graph::{DataGraph, EdgeDir, GraphBuilder, GraphError, NeighborEntry};
pub use ids::{AtomId, EdgeId, MachineId, VertexId};
pub use stats::GraphStats;
