//! Graph colouring heuristics for the chromatic engine (§4.2.1).
//!
//! A *proper* vertex colouring (no adjacent vertices share a colour) lets
//! the chromatic engine satisfy the edge consistency model by executing all
//! vertices of one colour synchronously — a *colour-step* — before moving to
//! the next colour. Full consistency needs a *second-order* colouring (no
//! vertex shares a colour with any distance-2 neighbour); vertex consistency
//! is satisfied by the trivial single-colour assignment.
//!
//! Optimal colouring is NP-hard; like the paper we use greedy heuristics.
//! Many MLDM graphs colour trivially (bipartite graphs are 2-colourable,
//! grids 2-colourable at distance 1), so [`Coloring::bipartite`] lets
//! callers supply the known colouring directly.

use crate::graph::DataGraph;
use crate::ids::VertexId;

/// A colour assignment for every vertex of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<u32>,
    num_colors: u32,
}

impl Coloring {
    /// Builds a colouring from a raw assignment.
    ///
    /// # Panics
    /// Panics if `colors` is non-empty and some colour ≥ implied palette
    /// size is missing from `0..num_colors`.
    pub fn from_assignment(colors: Vec<u32>) -> Self {
        let num_colors = colors.iter().copied().max().map_or(0, |c| c + 1);
        Coloring { colors, num_colors }
    }

    /// The trivial single-colour assignment (satisfies vertex consistency).
    pub fn uniform(n: usize) -> Self {
        Coloring { colors: vec![0; n], num_colors: if n == 0 { 0 } else { 1 } }
    }

    /// Two-colouring from a predicate (`true` ⇒ colour 1). Callers are
    /// responsible for the predicate actually being a bipartition; use
    /// [`verify_coloring`] in tests.
    pub fn bipartite(n: usize, side: impl Fn(VertexId) -> bool) -> Self {
        let colors = (0..n).map(|i| side(VertexId::from(i)) as u32).collect();
        Coloring { colors, num_colors: if n == 0 { 0 } else { 2 } }
    }

    /// Colour of a vertex.
    #[inline]
    pub fn color(&self, v: VertexId) -> u32 {
        self.colors[v.index()]
    }

    /// Size of the palette.
    #[inline]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// Number of coloured vertices.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the colouring covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Raw colour column (index = vertex id).
    pub fn as_slice(&self) -> &[u32] {
        &self.colors
    }

    /// Histogram of vertices per colour.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_colors as usize];
        for &c in &self.colors {
            h[c as usize] += 1;
        }
        h
    }
}

/// Greedy first-order colouring: scan vertices in descending-degree order
/// and assign the smallest colour unused by any already-coloured neighbour.
///
/// Produces a proper colouring for the edge consistency model. Descending
/// degree (Welsh–Powell order) keeps the palette small on power-law graphs.
pub fn greedy_coloring<V, E>(graph: &DataGraph<V, E>) -> Coloring {
    let n = graph.num_vertices();
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    const UNSET: u32 = u32::MAX;
    let mut colors = vec![UNSET; n];
    // `forbidden[c] == v` marks colour c as used by a neighbour of the
    // vertex currently being coloured; avoids clearing a bitmap per vertex.
    let mut forbidden: Vec<u32> = Vec::new();
    let mut num_colors = 0u32;

    for (stamp, &v) in order.iter().enumerate() {
        let stamp = stamp as u32;
        for e in graph.adj(v) {
            let c = colors[e.nbr.index()];
            if c != UNSET {
                if c as usize >= forbidden.len() {
                    forbidden.resize(c as usize + 1, u32::MAX);
                }
                forbidden[c as usize] = stamp;
            }
        }
        let mut c = 0u32;
        while (c as usize) < forbidden.len() && forbidden[c as usize] == stamp {
            c += 1;
        }
        colors[v.index()] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring { colors, num_colors }
}

/// Greedy second-order colouring: no vertex shares a colour with any vertex
/// at distance ≤ 2. Satisfies the *full* consistency model in the chromatic
/// engine (§4.2.1).
pub fn second_order_coloring<V, E>(graph: &DataGraph<V, E>) -> Coloring {
    let n = graph.num_vertices();
    let mut order: Vec<VertexId> = graph.vertices().collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    const UNSET: u32 = u32::MAX;
    let mut colors = vec![UNSET; n];
    let mut forbidden: Vec<u32> = Vec::new();
    let mut num_colors = 0u32;

    for (stamp, &v) in order.iter().enumerate() {
        let stamp = stamp as u32;
        let forbid = |c: u32, forbidden: &mut Vec<u32>| {
            if c != UNSET {
                if c as usize >= forbidden.len() {
                    forbidden.resize(c as usize + 1, u32::MAX);
                }
                forbidden[c as usize] = stamp;
            }
        };
        for e in graph.adj(v) {
            forbid(colors[e.nbr.index()], &mut forbidden);
            for e2 in graph.adj(e.nbr) {
                if e2.nbr != v {
                    forbid(colors[e2.nbr.index()], &mut forbidden);
                }
            }
        }
        let mut c = 0u32;
        while (c as usize) < forbidden.len() && forbidden[c as usize] == stamp {
            c += 1;
        }
        colors[v.index()] = c;
        num_colors = num_colors.max(c + 1);
    }
    Coloring { colors, num_colors }
}

/// Verifies that a colouring is proper at the given `order` (1 = distance-1
/// neighbours differ, 2 = distance-2 neighbours differ). Order 0 always
/// verifies.
pub fn verify_coloring<V, E>(graph: &DataGraph<V, E>, coloring: &Coloring, order: u8) -> bool {
    if coloring.len() != graph.num_vertices() {
        return false;
    }
    if order == 0 {
        return true;
    }
    for v in graph.vertices() {
        let cv = coloring.color(v);
        for e in graph.adj(v) {
            if coloring.color(e.nbr) == cv {
                return false;
            }
            if order >= 2 {
                for e2 in graph.adj(e.nbr) {
                    if e2.nbr != v && coloring.color(e2.nbr) == cv {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn cycle(n: usize) -> DataGraph<(), ()> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex(())).collect();
        for i in 0..n {
            b.add_edge(vs[i], vs[(i + 1) % n], ()).unwrap();
        }
        b.build()
    }

    fn star(leaves: usize) -> DataGraph<(), ()> {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex(());
        for _ in 0..leaves {
            let l = b.add_vertex(());
            b.add_edge(hub, l, ()).unwrap();
        }
        b.build()
    }

    #[test]
    fn even_cycle_two_colors() {
        let g = cycle(10);
        let c = greedy_coloring(&g);
        assert!(verify_coloring(&g, &c, 1));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn odd_cycle_three_colors() {
        let g = cycle(9);
        let c = greedy_coloring(&g);
        assert!(verify_coloring(&g, &c, 1));
        assert_eq!(c.num_colors(), 3);
    }

    #[test]
    fn star_two_colors() {
        let g = star(50);
        let c = greedy_coloring(&g);
        assert!(verify_coloring(&g, &c, 1));
        assert_eq!(c.num_colors(), 2);
    }

    #[test]
    fn star_second_order_needs_full_palette() {
        // In a star every leaf is at distance 2 from every other leaf, so
        // the distance-2 colouring needs leaves+1 colours.
        let g = star(5);
        let c = second_order_coloring(&g);
        assert!(verify_coloring(&g, &c, 2));
        assert_eq!(c.num_colors(), 6);
    }

    #[test]
    fn second_order_verifies_at_order_one_too() {
        let g = cycle(12);
        let c = second_order_coloring(&g);
        assert!(verify_coloring(&g, &c, 2));
        assert!(verify_coloring(&g, &c, 1));
    }

    #[test]
    fn uniform_fails_verification_on_edges() {
        let g = cycle(4);
        let c = Coloring::uniform(4);
        assert!(verify_coloring(&g, &c, 0));
        assert!(!verify_coloring(&g, &c, 1));
    }

    #[test]
    fn bipartite_constructor() {
        // path 0-1-2-3 coloured by parity
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..4).map(|_| b.add_vertex(())).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], ()).unwrap();
        }
        let g = b.build();
        let c = Coloring::bipartite(4, |v| v.0 % 2 == 1);
        assert!(verify_coloring(&g, &c, 1));
        assert_eq!(c.num_colors(), 2);
        assert_eq!(c.histogram(), vec![2, 2]);
    }

    #[test]
    fn empty_graph() {
        let g: DataGraph<(), ()> = GraphBuilder::new().build();
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors(), 0);
        assert!(c.is_empty());
        assert!(verify_coloring(&g, &c, 2));
    }

    #[test]
    fn wrong_length_fails_verification() {
        let g = cycle(5);
        let c = Coloring::uniform(4);
        assert!(!verify_coloring(&g, &c, 1));
    }
}
