//! Consistency models and the locking requirements they induce (§3.4).
//!
//! GraphLab guarantees *serializability*: every parallel execution has an
//! equivalent sequential schedule of update functions. The three models
//! trade parallelism for the breadth of data an update function may touch
//! (Fig. 2):
//!
//! | model  | central vertex | adjacent edges | adjacent vertices |
//! |--------|----------------|----------------|-------------------|
//! | Vertex | read + write   | —              | —                 |
//! | Edge   | read + write   | read + write   | read only         |
//! | Full   | read + write   | read + write   | read + write      |

use std::fmt;

/// The lock mode required on a vertex by a scope acquisition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LockType {
    /// Shared reader lock.
    Read,
    /// Exclusive writer lock.
    Write,
}

impl LockType {
    /// Whether two lock requests on the same vertex conflict.
    #[inline]
    pub fn conflicts_with(self, other: LockType) -> bool {
        self == LockType::Write || other == LockType::Write
    }
}

/// The GraphLab consistency models (§3.4, Fig. 2(b)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ConsistencyModel {
    /// Exclusive access to the central vertex data only. Maximum
    /// parallelism: all update functions may run simultaneously.
    Vertex,
    /// Exclusive access to the central vertex and adjacent edges, read-only
    /// access to adjacent vertices. Sufficient for most MLDM algorithms
    /// (e.g. PageRank, Eq. 1) and the model the chromatic engine's
    /// first-order colouring satisfies.
    #[default]
    Edge,
    /// Exclusive access to the entire scope. Concurrent updates must be at
    /// least two vertices apart (Fig. 2(c)).
    Full,
}

impl ConsistencyModel {
    /// Lock required on the central vertex of the scope.
    ///
    /// Always a write lock: the central vertex data is writable in every
    /// model.
    #[inline]
    pub fn central_lock(self) -> LockType {
        LockType::Write
    }

    /// Lock required on each adjacent vertex, or `None` when neighbours are
    /// not locked at all (vertex consistency).
    #[inline]
    pub fn neighbor_lock(self) -> Option<LockType> {
        match self {
            ConsistencyModel::Vertex => None,
            ConsistencyModel::Edge => Some(LockType::Read),
            ConsistencyModel::Full => Some(LockType::Write),
        }
    }

    /// Whether an update function may *read* data on adjacent vertices.
    #[inline]
    pub fn can_read_neighbors(self) -> bool {
        !matches!(self, ConsistencyModel::Vertex)
    }

    /// Whether an update function may *write* data on adjacent vertices.
    #[inline]
    pub fn can_write_neighbors(self) -> bool {
        matches!(self, ConsistencyModel::Full)
    }

    /// Whether an update function may read/write adjacent edge data.
    #[inline]
    pub fn can_access_edges(self) -> bool {
        !matches!(self, ConsistencyModel::Vertex)
    }

    /// The colouring *order* the chromatic engine needs to satisfy this
    /// model (§4.2.1): edge consistency needs a proper (distance-1)
    /// colouring, full consistency a distance-2 colouring, and vertex
    /// consistency is satisfied by a single colour.
    #[inline]
    pub fn required_coloring_order(self) -> u8 {
        match self {
            ConsistencyModel::Vertex => 0,
            ConsistencyModel::Edge => 1,
            ConsistencyModel::Full => 2,
        }
    }
}

impl fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConsistencyModel::Vertex => "vertex",
            ConsistencyModel::Edge => "edge",
            ConsistencyModel::Full => "full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_conflicts() {
        assert!(LockType::Write.conflicts_with(LockType::Write));
        assert!(LockType::Write.conflicts_with(LockType::Read));
        assert!(LockType::Read.conflicts_with(LockType::Write));
        assert!(!LockType::Read.conflicts_with(LockType::Read));
    }

    #[test]
    fn models_match_figure_2b() {
        use ConsistencyModel::*;
        assert_eq!(Vertex.neighbor_lock(), None);
        assert_eq!(Edge.neighbor_lock(), Some(LockType::Read));
        assert_eq!(Full.neighbor_lock(), Some(LockType::Write));
        for m in [Vertex, Edge, Full] {
            assert_eq!(m.central_lock(), LockType::Write);
        }
        assert!(!Vertex.can_read_neighbors());
        assert!(Edge.can_read_neighbors() && !Edge.can_write_neighbors());
        assert!(Full.can_write_neighbors());
        assert!(!Vertex.can_access_edges());
        assert!(Edge.can_access_edges());
    }

    #[test]
    fn coloring_order_matches_section_421() {
        assert_eq!(ConsistencyModel::Vertex.required_coloring_order(), 0);
        assert_eq!(ConsistencyModel::Edge.required_coloring_order(), 1);
        assert_eq!(ConsistencyModel::Full.required_coloring_order(), 2);
    }

    #[test]
    fn default_is_edge() {
        assert_eq!(ConsistencyModel::default(), ConsistencyModel::Edge);
    }
}
