//! # GraphLab-rs
//!
//! A from-scratch Rust reproduction of **Distributed GraphLab: A Framework
//! for Machine Learning and Data Mining in the Cloud** (Low, Gonzalez,
//! Kyrola, Bickson, Guestrin, Hellerstein — VLDB 2012).
//!
//! The GraphLab abstraction expresses asynchronous, dynamic,
//! graph-parallel computation with strong serializability guarantees:
//!
//! - the **data graph** stores mutable user data on a static structure
//!   ([`graph`]), distributed via two-phase *atom* partitioning
//!   ([`atoms`]);
//! - **update functions** transform overlapping vertex scopes and schedule
//!   future work ([`core::update`]);
//! - the **sync operation** maintains global aggregates
//!   ([`core::sync`]);
//! - two engines provide serializable distributed execution: the
//!   partially-synchronous **chromatic engine** and the fully-asynchronous
//!   pipelined **locking engine** ([`core`]);
//! - fault tolerance comes from synchronous and asynchronous
//!   (Chandy-Lamport) snapshots ([`core::snapshot`]).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use graphlab::core::{run_locking, EngineConfig, InitialSchedule, PartitionStrategy};
//! use graphlab::apps::pagerank::{init_ranks, PageRank};
//! use graphlab::workloads::web_graph;
//!
//! let mut graph = web_graph(1_000, 4, 42);
//! init_ranks(&mut graph);
//! let out = run_locking(
//!     &mut graph,
//!     Arc::new(PageRank::default()),
//!     InitialSchedule::AllVertices,
//!     Arc::new(Vec::new()),
//!     &EngineConfig::new(2),
//!     &PartitionStrategy::RandomHash,
//! );
//! assert!(out.metrics.updates >= 1_000);
//! ```
//!
//! See `examples/` for full application walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction index.

/// The data graph, consistency models and colouring (`graphlab-graph`).
pub use graphlab_graph as graph;
/// Atom partitioning, journals, placement and the simulated DFS
/// (`graphlab-atoms`).
pub use graphlab_atoms as atoms;
/// The simulated cluster fabric (`graphlab-net`).
pub use graphlab_net as net;
/// Engines, schedulers, sync ops and snapshots (`graphlab-core`).
pub use graphlab_core as core;
/// PageRank, ALS, LBP, CoEM, CoSeg (`graphlab-apps`).
pub use graphlab_apps as apps;
/// Synthetic workload generators (`graphlab-workloads`).
pub use graphlab_workloads as workloads;
/// MapReduce / Pregel / MPI baselines (`graphlab-baselines`).
pub use graphlab_baselines as baselines;
