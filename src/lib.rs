//! # GraphLab-rs
//!
//! A from-scratch Rust reproduction of **Distributed GraphLab: A Framework
//! for Machine Learning and Data Mining in the Cloud** (Low, Gonzalez,
//! Kyrola, Bickson, Guestrin, Hellerstein — VLDB 2012).
//!
//! The GraphLab abstraction expresses asynchronous, dynamic,
//! graph-parallel computation with strong serializability guarantees:
//!
//! - the **data graph** stores mutable user data on a static structure
//!   ([`graph`]), distributed via two-phase *atom* partitioning
//!   ([`atoms`]);
//! - **update functions** transform overlapping vertex scopes and schedule
//!   future work ([`core::update`]);
//! - the **sync operation** maintains typed global aggregates read back
//!   through `Copy` handles ([`core::sync`]);
//! - three engines run the same program behind one seam — the sequential
//!   reference (Alg. 2), the partially-synchronous **chromatic engine**
//!   and the fully-asynchronous pipelined **locking engine** ([`core`]);
//! - fault tolerance comes from synchronous and asynchronous
//!   (Chandy-Lamport) snapshots ([`core::snapshot`]).
//!
//! ## Quick start
//!
//! A program is assembled through the [`core::GraphLab`] builder: pick an
//! engine, register typed syncs, and either cap the work or terminate on
//! an aggregate-driven convergence check (`stop_when`).
//!
//! ```
//! use graphlab::core::{EngineKind, GraphLab, SyncCadence};
//! use graphlab::apps::pagerank::{init_ranks, PageRank, RankResidual, PAGERANK_RESIDUAL};
//! use graphlab::workloads::web_graph;
//!
//! let mut graph = web_graph(1_000, 4, 42);
//! init_ranks(&mut graph);
//! let out = GraphLab::on(&mut graph)
//!     .engine(EngineKind::Locking)     // or Chromatic / Sequential
//!     .machines(2)
//!     .sync(PAGERANK_RESIDUAL, RankResidual { alpha: 0.15 }, SyncCadence::Updates(1_000))
//!     .stop_when(|g| g.get(PAGERANK_RESIDUAL).is_some_and(|r| *r < 1e-3))
//!     .run(PageRank { alpha: 0.15, epsilon: 1e-9, dynamic: true });
//! assert!(out.metrics.updates >= 1_000);
//! assert!(*out.globals.get(PAGERANK_RESIDUAL).unwrap() < 1e-3);
//! ```
//!
//! The chromatic engine needs no caller-supplied colouring: the builder
//! computes one at the order the consistency model requires (and verifies
//! it), while a known colouring — e.g. the free bipartite 2-colouring of
//! ALS — can be passed with `.coloring(..)`.
//!
//! See `examples/` for full application walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction index.

/// The data graph, consistency models and colouring (`graphlab-graph`).
pub use graphlab_graph as graph;
/// Atom partitioning, journals, placement and the simulated DFS
/// (`graphlab-atoms`).
pub use graphlab_atoms as atoms;
/// The simulated cluster fabric (`graphlab-net`).
pub use graphlab_net as net;
/// Engines, schedulers, sync ops and snapshots (`graphlab-core`).
pub use graphlab_core as core;
/// PageRank, ALS, LBP, CoEM, CoSeg (`graphlab-apps`).
pub use graphlab_apps as apps;
/// Synthetic workload generators (`graphlab-workloads`).
pub use graphlab_workloads as workloads;
/// MapReduce / Pregel / MPI baselines (`graphlab-baselines`).
pub use graphlab_baselines as baselines;
