//! Named entity recognition with CoEM (§5.3): label propagation on a
//! NELL-like bipartite noun-phrase × context graph, chromatic engine with
//! random partitioning (exactly Table 2's NER row), finishing with the
//! Fig. 7(b)-style "top words per type" table.
//!
//! ```sh
//! cargo run --release --example named_entities
//! ```

use graphlab::apps::coem::{accuracy, Coem};
use graphlab::core::{EngineKind, GraphLab, PartitionStrategy};
use graphlab::graph::Coloring;
use graphlab::workloads::nell_graph;

const TYPE_NAMES: [&str; 4] = ["Food", "Religion", "City", "Person"];

fn main() {
    let types = 4;
    let problem = nell_graph(4_000, 1_000, types, 12, 0.05, 11);
    println!(
        "NELL-like graph: {} noun phrases, {} contexts, {} edges, {} types, 5% seeded",
        problem.noun_phrases,
        problem.graph.num_vertices() - problem.noun_phrases,
        problem.graph.num_edges(),
        types
    );

    let mut g = problem.graph.clone();
    let nps = problem.noun_phrases;
    let bipartite = Coloring::bipartite(g.num_vertices(), |v| v.index() >= nps);
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Chromatic)
        .machines(4)
        .coloring(bipartite)
        .partition(PartitionStrategy::RandomHash) // Table 2: NER uses random cuts
        .run(Coem { types, epsilon: 1e-5, dynamic: true });

    println!(
        "chromatic engine: {} updates in {:?}, {:.1} MB network traffic",
        out.metrics.updates,
        out.metrics.runtime,
        out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6
    );
    println!(
        "noun-phrase type accuracy: {:.1}%",
        100.0 * accuracy(&g, &problem.truth[..])
    );

    // Fig. 7(b): top noun-phrases per type (most confident non-seeds).
    println!("\ntop noun-phrases per type:");
    for t in 0..types {
        let mut scored: Vec<(f64, u32)> = (0..nps as u32)
            .filter(|&v| {
                let d = g.vertex_data(graphlab::graph::VertexId(v));
                !d.seed && d.argmax() == t
            })
            .map(|v| (g.vertex_data(graphlab::graph::VertexId(v)).dist[t], v))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let tops: Vec<String> =
            scored.iter().take(4).map(|(p, v)| format!("np{v} ({p:.2})")).collect();
        println!("  {:<10} {}", TYPE_NAMES[t % TYPE_NAMES.len()], tops.join(", "));
    }
}
