//! Quickstart: dynamic PageRank on a power-law web graph, run three ways —
//! the sequential reference (Alg. 2), the chromatic engine, and the
//! pipelined locking engine — the same program through the one `GraphLab`
//! builder, only `.engine(..)` changes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphlab::apps::pagerank::{
    exact_pagerank, init_ranks, l1_error, PageRank, RankResidual, PAGERANK_RESIDUAL,
};
use graphlab::core::{EngineKind, GraphLab, SyncCadence};
use graphlab::workloads::web_graph;

fn main() {
    let n = 20_000;
    println!("generating a {n}-page power-law web graph…");
    let base = web_graph(n, 4, 42);
    let oracle = exact_pagerank(&base, 0.15, 100);
    let pagerank = PageRank { alpha: 0.15, epsilon: 1e-9, dynamic: true };

    for engine in [EngineKind::Sequential, EngineKind::Chromatic, EngineKind::Locking] {
        let mut g = base.clone();
        init_ranks(&mut g);
        let out = GraphLab::on(&mut g)
            .engine(engine)
            .machines(4)
            .run(pagerank.clone());
        let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        println!(
            "{engine:<10?}: {:>9} updates, {:>8.1?}, L1 error vs power iteration {:.2e}, {:.1} MB traffic",
            out.metrics.updates,
            out.metrics.runtime,
            l1_error(&got, &oracle),
            out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6,
        );
    }

    // Termination can also be aggregate-driven (§3.5): register the
    // PageRank-equation residual as a sync and stop once it drops below
    // tolerance — no fixed sweep count anywhere.
    let mut g = base.clone();
    init_ranks(&mut g);
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(4)
        .sync(PAGERANK_RESIDUAL, RankResidual { alpha: 0.15 }, SyncCadence::Updates(n as u64))
        .stop_when(|g| g.get(PAGERANK_RESIDUAL).is_some_and(|r| *r < 1e-6))
        .run(PageRank { alpha: 0.15, epsilon: -1.0, dynamic: true });
    println!(
        "stop_when(residual<1e-6): {:>6} updates, residual at halt {:.2e}",
        out.metrics.updates,
        out.globals.get(PAGERANK_RESIDUAL).copied().unwrap_or(f64::NAN),
    );
}
