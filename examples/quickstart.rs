//! Quickstart: dynamic PageRank on a power-law web graph, run three ways —
//! the sequential reference (Alg. 2), the chromatic engine, and the
//! pipelined locking engine — all from the same update function.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use graphlab::apps::pagerank::{exact_pagerank, init_ranks, l1_error, PageRank};
use graphlab::core::{
    run_chromatic, run_locking, run_sequential, EngineConfig, InitialSchedule, PartitionStrategy,
    SequentialConfig,
};
use graphlab::graph::greedy_coloring;
use graphlab::workloads::web_graph;

fn main() {
    let n = 20_000;
    println!("generating a {n}-page power-law web graph…");
    let base = web_graph(n, 4, 42);
    let oracle = exact_pagerank(&base, 0.15, 100);
    let pagerank = PageRank { alpha: 0.15, epsilon: 1e-9, dynamic: true };

    // 1. Sequential reference: the literal execution model of Alg. 2.
    let mut g = base.clone();
    init_ranks(&mut g);
    let m = run_sequential(&mut g, &pagerank, InitialSchedule::AllVertices, SequentialConfig::default());
    let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
    println!(
        "sequential : {:>9} updates, {:>8.1?}, L1 error vs power iteration {:.2e}",
        m.updates,
        m.runtime,
        l1_error(&got, &oracle)
    );

    // 2. Chromatic engine on 4 simulated machines (web graphs colour easily).
    let mut g = base.clone();
    init_ranks(&mut g);
    let coloring = greedy_coloring(&g);
    println!("greedy colouring used {} colours", coloring.num_colors());
    let out = run_chromatic(
        &mut g,
        coloring,
        Arc::new(pagerank.clone()),
        InitialSchedule::AllVertices,
        Arc::new(Vec::new()),
        &EngineConfig::new(4),
        &PartitionStrategy::RandomHash,
    );
    let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
    println!(
        "chromatic  : {:>9} updates, {:>8.1?}, L1 error {:.2e}, {} colour-steps, {:.1} MB traffic",
        out.metrics.updates,
        out.metrics.runtime,
        l1_error(&got, &oracle),
        out.metrics.steps,
        out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6,
    );

    // 3. Locking engine: fully asynchronous, no colouring needed.
    let mut g = base.clone();
    init_ranks(&mut g);
    let out = run_locking(
        &mut g,
        Arc::new(pagerank),
        InitialSchedule::AllVertices,
        Arc::new(Vec::new()),
        &EngineConfig::new(4),
        &PartitionStrategy::RandomHash,
    );
    let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
    println!(
        "locking    : {:>9} updates, {:>8.1?}, L1 error {:.2e}, {:.1} MB traffic",
        out.metrics.updates,
        out.metrics.runtime,
        l1_error(&got, &oracle),
        out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6,
    );
}
