//! Movie recommendations with ALS collaborative filtering (§5.1).
//!
//! Builds a synthetic Netflix-style rating graph (bipartite users ×
//! movies, Zipf popularity, planted low-rank structure), trains latent
//! factors with the chromatic engine (the graph is two-colourable — the
//! builder accepts the free bipartite colouring), and compares dynamic
//! (residual-scheduled) against BSP-style training — the Fig. 9(a)
//! experiment in miniature.
//!
//! ```sh
//! cargo run --release --example movie_recommendations
//! ```

use graphlab::apps::als::{test_rmse, train_rmse, Als};
use graphlab::core::{EngineKind, GraphLab};
use graphlab::graph::Coloring;
use graphlab::workloads::ratings_graph;

fn main() {
    let d = 8;
    let problem = ratings_graph(2_000, 500, 20, d, 7);
    println!(
        "ratings problem: {} users × {} movies, {} ratings, {} held out, d={d}",
        problem.users,
        problem.graph.num_vertices() - problem.users,
        problem.graph.num_edges(),
        problem.held_out.len()
    );
    println!("initial train RMSE {:.4}", train_rmse(&problem.graph));

    for (name, dynamic) in [("dynamic (GraphLab)", true), ("BSP-style sweeps", false)] {
        let mut g = problem.graph.clone();
        let users = problem.users;
        // Users/movies form a bipartition: a free 2-colouring.
        let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= users);
        // BSP mode: epsilon below any residual => every update reschedules
        // its neighbours (full sweeps); the cap meters the rounds.
        let als = Als { d, lambda: 0.06, epsilon: if dynamic { 1e-4 } else { -1.0 }, dynamic: true };
        let cap = if dynamic { 0 } else { 30 * g.num_vertices() as u64 };
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Chromatic)
            .machines(4)
            .coloring(coloring)
            .max_updates(cap)
            .run(als);
        println!(
            "{name:<20}: {:>8} updates in {:>8.1?} → train RMSE {:.4}, test RMSE {:.4}",
            out.metrics.updates,
            out.metrics.runtime,
            train_rmse(&g),
            test_rmse(&g, &problem.held_out),
        );
    }
}
