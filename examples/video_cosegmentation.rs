//! Video co-segmentation (§5.2): LBP + GMM with EM via the sync operation,
//! on the fully asynchronous locking engine with the approximate priority
//! scheduler — "the only distributed graph abstraction that allows dynamic
//! prioritized scheduling" with sync, per the paper.
//!
//! ```sh
//! cargo run --release --example video_cosegmentation
//! ```

use std::sync::Arc;

use graphlab::apps::coseg::{CosegUpdate, CosegVertex};
use graphlab::apps::gmm::GmmSync;
use graphlab::apps::lbp::BpEdge;
use graphlab::core::{
    run_locking, EngineConfig, InitialSchedule, PartitionStrategy, SchedulerKind, SyncOp,
};
use graphlab::workloads::{coseg_video, frame_partition};

fn main() {
    let (frames, w, h, labels) = (16, 20, 10, 2);
    let (mut g, truth) = coseg_video(frames, w, h, labels, 3);
    println!(
        "video volume: {frames} frames of {w}×{h} super-pixels = {} vertices, {} edges (26-connected)",
        g.num_vertices(),
        g.num_edges()
    );

    let update = CosegUpdate { labels, smoothing: 2.0, epsilon: 1e-4 };
    let syncs: Arc<Vec<Box<dyn SyncOp<CosegVertex, BpEdge>>>> =
        Arc::new(vec![Box::new(GmmSync::new(labels))]);

    let mut cfg = EngineConfig::new(4);
    cfg.scheduler = SchedulerKind::Priority; // residual BP priority
    cfg.sync_interval_updates = 2_000; // background EM refresh cadence
    cfg.max_updates = 40 * g.num_vertices() as u64;

    // The paper's optimal partition: contiguous frame blocks per atom.
    let atoms = cfg.num_atoms;
    let strategy = PartitionStrategy::Custom(Arc::new(frame_partition(frames, w, h, atoms)));

    let out = run_locking(&mut g, Arc::new(update), InitialSchedule::AllVertices, syncs, &cfg, &strategy);

    let correct = g
        .vertices()
        .filter(|&v| g.vertex_data(v).map_label() == truth[v.index()])
        .count();
    println!(
        "locking engine: {} updates in {:?}, {} sync epochs published",
        out.metrics.updates,
        out.metrics.runtime,
        out.globals.len()
    );
    println!(
        "segmentation accuracy vs planted ground truth: {:.1}% ({}/{})",
        100.0 * correct as f64 / g.num_vertices() as f64,
        correct,
        g.num_vertices()
    );
    if let Some((_, gmm)) = out.globals.iter().find(|(n, _)| n == "gmm") {
        for (k, c) in GmmSync::unpack(gmm).iter().enumerate() {
            println!("  GMM component {k}: weight {:.2}, mean {:.3}, var {:.4}", c.0, c.1, c.2);
        }
    }
}
