//! Video co-segmentation (§5.2): LBP + GMM with EM via the sync operation,
//! on the fully asynchronous locking engine with the approximate priority
//! scheduler — "the only distributed graph abstraction that allows dynamic
//! prioritized scheduling" with sync, per the paper. The GMM parameters
//! live under a typed [`GlobalHandle`] and are read back through
//! `ctx.global(GMM_GLOBAL)`.
//!
//! ```sh
//! cargo run --release --example video_cosegmentation
//! ```

use std::sync::Arc;

use graphlab::apps::coseg::CosegUpdate;
use graphlab::apps::gmm::{GmmSync, GMM_GLOBAL};
use graphlab::core::{EngineKind, GraphLab, PartitionStrategy, SchedulerKind, SyncCadence};
use graphlab::workloads::{coseg_video, frame_partition};

fn main() {
    let (frames, w, h, labels) = (16, 20, 10, 2);
    let (mut g, truth) = coseg_video(frames, w, h, labels, 3);
    println!(
        "video volume: {frames} frames of {w}×{h} super-pixels = {} vertices, {} edges (26-connected)",
        g.num_vertices(),
        g.num_edges()
    );

    let n = g.num_vertices() as u64;
    // The paper's optimal partition: contiguous frame blocks per atom.
    let atoms = 32usize;
    let strategy = PartitionStrategy::Custom(Arc::new(frame_partition(frames, w, h, atoms)));

    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(4)
        .scheduler(SchedulerKind::Priority) // residual BP priority
        .partition(strategy)
        .configure(|c| c.num_atoms = atoms)
        .sync(GMM_GLOBAL, GmmSync::new(labels), SyncCadence::Updates(2_000)) // background EM refresh
        .max_updates(40 * n)
        .run(CosegUpdate { labels, smoothing: 2.0, epsilon: 1e-4 });

    let correct = g
        .vertices()
        .filter(|&v| g.vertex_data(v).map_label() == truth[v.index()])
        .count();
    println!(
        "locking engine: {} updates in {:?}, {} globals published",
        out.metrics.updates,
        out.metrics.runtime,
        out.globals.len()
    );
    println!(
        "segmentation accuracy vs planted ground truth: {:.1}% ({}/{})",
        100.0 * correct as f64 / g.num_vertices() as f64,
        correct,
        g.num_vertices()
    );
    if let Some(gmm) = out.globals.get(GMM_GLOBAL) {
        for (k, c) in GmmSync::unpack(gmm).iter().enumerate() {
            println!("  GMM component {k}: weight {:.2}, mean {:.3}, var {:.4}", c.0, c.1, c.2);
        }
    }
}
