//! Fault tolerance (§4.3): synchronous stop-the-world snapshots vs the
//! asynchronous Chandy-Lamport snapshot expressed as an update function
//! (Alg. 5), plus checkpoint restore — recovery converges to the same
//! answer.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use graphlab::apps::lbp::LoopyBp;
use graphlab::apps::pagerank::{init_ranks, PageRank};
use graphlab::core::{
    optimal_checkpoint_interval_secs, restore_snapshot, snapshot_exists, EngineKind, GraphLab,
    PartitionStrategy, SnapshotConfig, SnapshotMode,
};
use graphlab::workloads::{mesh3d_mrf, web_graph};

fn main() {
    // Eq. 3: the optimal checkpoint interval for the paper's deployment.
    let interval =
        optimal_checkpoint_interval_secs(120.0, 365.25 * 24.0 * 3600.0, 64);
    println!(
        "Young's optimal checkpoint interval (64 machines, 1-year MTBF, 2-min checkpoint): {:.1} h",
        interval / 3600.0
    );

    let (mesh, _) = mesh3d_mrf(12, 12, 6, 2, 0.2, 5);
    println!(
        "\nLBP on a {}-vertex 26-connected mesh, one snapshot mid-run:",
        mesh.num_vertices()
    );
    for (name, mode) in
        [("synchronous", SnapshotMode::Synchronous), ("asynchronous", SnapshotMode::Asynchronous)]
    {
        let mut g = mesh.clone();
        let every = g.num_vertices() as u64;
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .partition(PartitionStrategy::BfsGrow)
            .snapshot(SnapshotConfig { mode, every_updates: every, max_snapshots: 1 })
            .run(LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-4, dynamic: true, damping: 0.0 });
        println!(
            "  {name:<13}: {} updates in {:?}, snapshots taken: {}, checkpoint on DFS: {}",
            out.metrics.updates,
            out.metrics.runtime,
            out.metrics.snapshots,
            snapshot_exists(&out.dfs, "ckpt", 0),
        );
    }

    // Recovery: snapshot a PageRank run, restore, re-run → same fixpoint.
    println!("\nrecovery check (PageRank):");
    let base = web_graph(3_000, 4, 13);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut full = base.clone();
    init_ranks(&mut full);
    let out = GraphLab::on(&mut full)
        .engine(EngineKind::Locking)
        .machines(3)
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 2_000,
            max_snapshots: 1,
        })
        .run(pr.clone());

    let mut restored = base.clone();
    restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    GraphLab::on(&mut restored).run(pr);

    let max_diff = full
        .vertices()
        .map(|v| (full.vertex_data(v) - restored.vertex_data(v)).abs())
        .fold(0.0f64, f64::max)
        / full.vertices().map(|v| *full.vertex_data(v)).fold(0.0f64, f64::max);
    println!(
        "  restored-and-continued run matches the uninterrupted run: max relative diff {max_diff:.2e}"
    );
    assert!(max_diff < 1e-6);
    println!("  recovery OK");
}
