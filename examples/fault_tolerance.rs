//! Fault tolerance (§4.3): deterministic fault injection + automatic
//! checkpoint recovery.
//!
//! The fabric's [`FaultPlan`] kills a machine mid-run (dropping its
//! volatile state and all in-flight traffic) and restarts it after a dead
//! window; the engines detect the death, roll the whole cluster back to
//! the latest complete snapshot on the simulated DFS, and reconverge to
//! the same answer — no hand-scripted kill/restore required.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use std::time::Duration;

use graphlab::apps::lbp::LoopyBp;
use graphlab::apps::pagerank::{init_ranks, PageRank};
use graphlab::core::{
    snapshot_exists, young_interval, EngineKind, FaultPlan, FaultTrigger, GraphLab,
    PartitionStrategy, SnapshotConfig, SnapshotMode,
};
use graphlab::workloads::{mesh3d_mrf, web_graph};

fn main() {
    // Eq. 3: the optimal checkpoint interval for the paper's deployment.
    let interval = young_interval(120.0, 365.25 * 24.0 * 3600.0, 64);
    println!(
        "Young's optimal checkpoint interval (64 machines, 1-year MTBF, 2-min checkpoint): {:.1} h",
        interval / 3600.0
    );

    // Snapshot construction comparison: synchronous stop-the-world vs the
    // asynchronous Chandy-Lamport update function (Alg. 5).
    let (mesh, _) = mesh3d_mrf(12, 12, 6, 2, 0.2, 5);
    println!(
        "\nLBP on a {}-vertex 26-connected mesh, one snapshot mid-run:",
        mesh.num_vertices()
    );
    for (name, mode) in
        [("synchronous", SnapshotMode::Synchronous), ("asynchronous", SnapshotMode::Asynchronous)]
    {
        let mut g = mesh.clone();
        let every = g.num_vertices() as u64;
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .partition(PartitionStrategy::BfsGrow)
            .snapshot(SnapshotConfig { mode, every_updates: every, max_snapshots: 1 })
            .run(LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-4, dynamic: true, damping: 0.0 });
        println!(
            "  {name:<13}: {} updates in {:?}, snapshots taken: {}, checkpoint on DFS: {}",
            out.metrics.updates,
            out.metrics.runtime,
            out.metrics.snapshots,
            snapshot_exists(&out.dfs, "ckpt", 0),
        );
    }

    // Automatic recovery: the fault plan kills machine 2 mid-run (about
    // 40% into the ~10k-envelope run) and restarts it 25 ms later. The
    // engines do the rest — detect, roll back to the latest complete
    // checkpoint, resume, reconverge.
    println!("\nkill-and-recover check (PageRank, machine 2 dies mid-run):");
    let base = web_graph(3_000, 4, 13);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut undisturbed = base.clone();
    init_ranks(&mut undisturbed);
    GraphLab::on(&mut undisturbed)
        .engine(EngineKind::Locking)
        .machines(3)
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 2_000,
            max_snapshots: 64,
        })
        .run(pr.clone());

    let mut killed = base.clone();
    init_ranks(&mut killed);
    let out = GraphLab::on(&mut killed)
        .engine(EngineKind::Locking)
        .machines(3)
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 2_000,
            max_snapshots: 64,
        })
        .faults(FaultPlan::seeded(42).kill_and_restart(
            2,
            FaultTrigger::Deliveries(4_000),
            FaultTrigger::Elapsed(Duration::from_millis(25)),
        ))
        .run(pr.clone());

    let max_rank = undisturbed
        .vertices()
        .map(|v| *undisturbed.vertex_data(v))
        .fold(0.0f64, f64::max);
    let max_diff = undisturbed
        .vertices()
        .map(|v| (undisturbed.vertex_data(v) - killed.vertex_data(v)).abs())
        .fold(0.0f64, f64::max)
        / max_rank;
    println!(
        "  recoveries: {} (cluster rolled back to the latest complete checkpoint)",
        out.metrics.recoveries
    );
    println!("  killed-and-recovered run matches the undisturbed run: max relative diff {max_diff:.2e}");
    assert!(out.metrics.recoveries >= 1, "the kill must trigger a rollback");
    assert!(max_diff < 1e-6);
    println!("  recovery OK");

    // Without a completed checkpoint the same failure is unrecoverable —
    // and reports so cleanly instead of hanging.
    let mut doomed = base.clone();
    init_ranks(&mut doomed);
    let err = GraphLab::on(&mut doomed)
        .engine(EngineKind::Locking)
        .machines(3)
        .faults(FaultPlan::seeded(42).kill_and_restart(
            2,
            FaultTrigger::Deliveries(4_000),
            FaultTrigger::Elapsed(Duration::from_millis(25)),
        ))
        .try_run(pr)
        .map(|_| ())
        .expect_err("no snapshots configured: the kill must fail the run");
    println!("\nwithout snapshots the failure is reported cleanly:\n  {err}");
}
