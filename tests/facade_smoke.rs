//! Facade smoke test: drive the whole public surface end-to-end through
//! the `graphlab` facade crate — build a graph via `graphlab::graph`,
//! generate a workload, and run the same PageRank program on **all three
//! engines** through the [`GraphLab`] builder, checking they agree with
//! each other and with the power-iteration oracle.

use graphlab::apps::pagerank::{exact_pagerank, init_ranks, l1_error, PageRank};
use graphlab::core::{Engine, EngineKind, GraphLab};
use graphlab::graph::{DataGraph, GraphBuilder, VertexId};
use graphlab::workloads::web_graph;

/// A small ring-with-chords graph built by hand through the facade's
/// re-exported `GraphBuilder`, with out-weight-normalised links
/// (PageRank's edge datum is `w_{u,v}` with `Σ_v w_{u,v} = 1`).
fn small_graph() -> DataGraph<f64, f64> {
    let n = 24u32;
    let links: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| {
            let mut out = vec![(i, (i + 1) % n)];
            if i % 3 == 0 {
                out.push((i, (i + 7) % n));
            }
            out
        })
        .collect();
    let mut outdeg = vec![0usize; n as usize];
    for &(s, _) in &links {
        outdeg[s as usize] += 1;
    }
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(0.0);
    }
    for (s, d) in links {
        b.add_edge(VertexId(s), VertexId(d), 1.0 / outdeg[s as usize] as f64).unwrap();
    }
    b.build()
}

/// One builder chain per engine — the only thing that changes is
/// `.engine(..)`.
fn run_engine(base: &DataGraph<f64, f64>, engine: EngineKind, machines: usize) -> Vec<f64> {
    let mut g = base.clone();
    init_ranks(&mut g);
    GraphLab::on(&mut g)
        .engine(engine)
        .machines(machines)
        .run(PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true });
    g.vertices().map(|v| *g.vertex_data(v)).collect()
}

fn assert_three_engine_agreement(base: &DataGraph<f64, f64>, machines: usize, oracle: &[f64]) {
    let seq = run_engine(base, EngineKind::Sequential, 1);
    let chro = run_engine(base, EngineKind::Chromatic, machines);
    let lock = run_engine(base, Engine::Locking, machines);
    assert!(l1_error(&seq, oracle) < 1e-6, "sequential vs oracle: {}", l1_error(&seq, oracle));
    assert!(l1_error(&chro, oracle) < 1e-6, "chromatic vs oracle: {}", l1_error(&chro, oracle));
    assert!(l1_error(&lock, oracle) < 1e-6, "locking vs oracle: {}", l1_error(&lock, oracle));
    assert!(l1_error(&chro, &lock) < 1e-6, "engines disagree: {}", l1_error(&chro, &lock));
    assert!(l1_error(&seq, &chro) < 1e-6, "seq/chromatic disagree: {}", l1_error(&seq, &chro));
}

#[test]
fn pagerank_three_engines_agree_on_handbuilt_graph() {
    let base = small_graph();
    let oracle = exact_pagerank(&base, 0.15, 80);
    assert_three_engine_agreement(&base, 2, &oracle);
}

#[test]
fn pagerank_three_engines_agree_on_powerlaw_workload() {
    let base = web_graph(600, 4, 11);
    let oracle = exact_pagerank(&base, 0.15, 80);
    assert_three_engine_agreement(&base, 3, &oracle);
}
