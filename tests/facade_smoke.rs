//! Facade smoke test: drive the whole public surface end-to-end through
//! the `graphlab` facade crate — build a graph via `graphlab::graph`,
//! generate a workload, and run PageRank on both distributed engines,
//! checking they agree with each other and with the power-iteration
//! oracle.

use std::sync::Arc;

use graphlab::apps::pagerank::{exact_pagerank, init_ranks, l1_error, PageRank};
use graphlab::core::{
    run_chromatic, run_locking, EngineConfig, InitialSchedule, PartitionStrategy, SyncOp,
};
use graphlab::graph::{greedy_coloring, DataGraph, GraphBuilder, VertexId};
use graphlab::workloads::web_graph;

fn no_syncs() -> Arc<Vec<Box<dyn SyncOp<f64, f64>>>> {
    Arc::new(Vec::new())
}

/// A small ring-with-chords graph built by hand through the facade's
/// re-exported `GraphBuilder`, with out-weight-normalised links
/// (PageRank's edge datum is `w_{u,v}` with `Σ_v w_{u,v} = 1`).
fn small_graph() -> DataGraph<f64, f64> {
    let n = 24u32;
    let links: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| {
            let mut out = vec![(i, (i + 1) % n)];
            if i % 3 == 0 {
                out.push((i, (i + 7) % n));
            }
            out
        })
        .collect();
    let mut outdeg = vec![0usize; n as usize];
    for &(s, _) in &links {
        outdeg[s as usize] += 1;
    }
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(0.0);
    }
    for (s, d) in links {
        b.add_edge(VertexId(s), VertexId(d), 1.0 / outdeg[s as usize] as f64).unwrap();
    }
    b.build()
}

fn run_both(base: &DataGraph<f64, f64>, machines: usize) -> (Vec<f64>, Vec<f64>) {
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    let mut chro = base.clone();
    init_ranks(&mut chro);
    let coloring = greedy_coloring(&chro);
    run_chromatic(
        &mut chro,
        coloring,
        Arc::new(pr.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &EngineConfig::new(machines),
        &PartitionStrategy::RandomHash,
    );
    let chro_ranks: Vec<f64> = chro.vertices().map(|v| *chro.vertex_data(v)).collect();

    let mut lock = base.clone();
    init_ranks(&mut lock);
    run_locking(
        &mut lock,
        Arc::new(pr),
        InitialSchedule::AllVertices,
        no_syncs(),
        &EngineConfig::new(machines),
        &PartitionStrategy::RandomHash,
    );
    let lock_ranks: Vec<f64> = lock.vertices().map(|v| *lock.vertex_data(v)).collect();

    (chro_ranks, lock_ranks)
}

#[test]
fn pagerank_engines_agree_on_handbuilt_graph() {
    let base = small_graph();
    let oracle = exact_pagerank(&base, 0.15, 80);
    let (chro, lock) = run_both(&base, 2);
    assert!(l1_error(&chro, &oracle) < 1e-6, "chromatic vs oracle: {}", l1_error(&chro, &oracle));
    assert!(l1_error(&lock, &oracle) < 1e-6, "locking vs oracle: {}", l1_error(&lock, &oracle));
    assert!(l1_error(&chro, &lock) < 1e-6, "engines disagree: {}", l1_error(&chro, &lock));
}

#[test]
fn pagerank_engines_agree_on_powerlaw_workload() {
    let base = web_graph(600, 4, 11);
    let oracle = exact_pagerank(&base, 0.15, 80);
    let (chro, lock) = run_both(&base, 3);
    assert!(l1_error(&chro, &oracle) < 1e-6, "chromatic vs oracle: {}", l1_error(&chro, &oracle));
    assert!(l1_error(&lock, &oracle) < 1e-6, "locking vs oracle: {}", l1_error(&lock, &oracle));
    assert!(l1_error(&chro, &lock) < 1e-6, "engines disagree: {}", l1_error(&chro, &lock));
}
