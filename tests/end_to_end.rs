//! Workspace-level integration tests: applications × engines × baselines.
//!
//! These validate the claims the benchmark harness relies on: all engines
//! (sequential reference, chromatic, locking — all behind the [`GraphLab`]
//! builder) and all baselines (MapReduce, Pregel, MPI) agree on the
//! *answers*, so the performance comparisons in EXPERIMENTS.md compare
//! equal work.

use graphlab::apps::als::{train_rmse, Als};
use graphlab::apps::coem::{accuracy, Coem};
use graphlab::apps::lbp::{total_residual, LoopyBp};
use graphlab::apps::pagerank::{
    exact_pagerank, init_ranks, l1_error, PageRank, RankResidual, PAGERANK_RESIDUAL,
};
use graphlab::baselines::mapreduce::{coem_mapreduce, pagerank_mapreduce, MapReduceConfig};
use graphlab::baselines::mpi::coem_mpi;
use graphlab::baselines::pregel::{PregelConfig, PregelEngine, PregelPageRank};
use graphlab::core::{
    EngineKind, FaultPlan, FaultTrigger, GraphLab, PartitionStrategy, RecoveryMode, SchedulerKind,
    SnapshotConfig, SnapshotMode, SyncCadence,
};
use graphlab::graph::Coloring;
use graphlab::net::LatencyModel;
use graphlab::workloads::{nell_graph, ratings_graph, web_graph, webspam_mrf};

#[test]
fn pagerank_all_systems_agree() {
    let base = web_graph(2_000, 4, 5);
    let oracle = exact_pagerank(&base, 0.15, 60);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    // Sequential reference.
    let mut seq = base.clone();
    init_ranks(&mut seq);
    GraphLab::on(&mut seq).run(pr.clone());
    let seq_ranks: Vec<f64> = seq.vertices().map(|v| *seq.vertex_data(v)).collect();
    assert!(l1_error(&seq_ranks, &oracle) < 1e-6);

    // Chromatic engine (3 machines, auto-computed colouring).
    let mut chro = base.clone();
    init_ranks(&mut chro);
    GraphLab::on(&mut chro).engine(EngineKind::Chromatic).machines(3).run(pr.clone());
    let chro_ranks: Vec<f64> = chro.vertices().map(|v| *chro.vertex_data(v)).collect();
    assert!(l1_error(&chro_ranks, &oracle) < 1e-6, "chromatic {}", l1_error(&chro_ranks, &oracle));

    // Locking engine (3 machines).
    let mut lock = base.clone();
    init_ranks(&mut lock);
    GraphLab::on(&mut lock)
        .engine(EngineKind::Locking)
        .machines(3)
        .partition(PartitionStrategy::BfsGrow)
        .run(pr);
    let lock_ranks: Vec<f64> = lock.vertices().map(|v| *lock.vertex_data(v)).collect();
    assert!(l1_error(&lock_ranks, &oracle) < 1e-6, "locking {}", l1_error(&lock_ranks, &oracle));

    // MapReduce (power iteration).
    let (mr_ranks, _) = pagerank_mapreduce(
        &base,
        0.15,
        60,
        MapReduceConfig { job_startup: std::time::Duration::from_millis(1), ..Default::default() },
    );
    assert!(l1_error(&mr_ranks, &oracle) < 1e-6, "mapreduce {}", l1_error(&mr_ranks, &oracle));

    // Pregel.
    let mut pregel = base.clone();
    init_ranks(&mut pregel);
    let engine = PregelEngine::new(PregelConfig { workers: 3, max_supersteps: 61 });
    engine.run(&mut pregel, &PregelPageRank { alpha: 0.15, epsilon: 0.0 }, |_, _| {});
    let pregel_ranks: Vec<f64> = pregel.vertices().map(|v| *pregel.vertex_data(v)).collect();
    assert!(l1_error(&pregel_ranks, &oracle) < 1e-6, "pregel {}", l1_error(&pregel_ranks, &oracle));
}

/// Satellite (ISSUE 4): three-engine agreement for ALS through the
/// builder — the same program (graph, update, cap) on the sequential
/// reference, the chromatic engine (free bipartite colouring) and the
/// locking engine (priority scheduler) reaches a comparably good fit.
#[test]
fn als_three_engines_reach_comparable_rmse() {
    let problem = ratings_graph(120, 60, 8, 4, 3);
    let als = Als { d: 4, lambda: 0.05, epsilon: 1e-5, dynamic: true };
    let users = problem.users;

    let mut results = Vec::new();
    for engine in [EngineKind::Sequential, EngineKind::Chromatic, EngineKind::Locking] {
        let mut g = problem.graph.clone();
        let mut b = GraphLab::on(&mut g).engine(engine).max_updates(20_000);
        b = match engine {
            // Users/movies form a bipartition: a free 2-colouring.
            EngineKind::Chromatic => b
                .machines(3)
                .coloring(Coloring::bipartite(problem.graph.num_vertices(), |v| {
                    v.index() >= users
                })),
            EngineKind::Locking => b.machines(3).scheduler(SchedulerKind::Priority),
            EngineKind::Sequential => b,
        };
        b.run(als.clone());
        results.push((engine, train_rmse(&g)));
    }
    // All engines converge to a comparably good fit (λ-regularised floor).
    for (engine, rmse) in &results {
        assert!(*rmse < 0.12, "{engine:?} rmse {rmse}");
    }
    let best = results.iter().map(|(_, r)| *r).fold(f64::MAX, f64::min);
    for (engine, rmse) in &results {
        assert!(*rmse < best * 2.0 + 0.02, "{engine:?} rmse {rmse} vs best {best}");
    }
}

#[test]
fn coem_graphlab_matches_baselines() {
    let problem = nell_graph(120, 40, 2, 6, 0.2, 7);

    let mut g = problem.graph.clone();
    let nps = problem.noun_phrases;
    let bipartite = Coloring::bipartite(g.num_vertices(), |v| v.index() >= nps);
    GraphLab::on(&mut g)
        .engine(EngineKind::Chromatic)
        .machines(3)
        .coloring(bipartite)
        .run(Coem { types: 2, epsilon: 1e-7, dynamic: true });
    let gl_acc = accuracy(&g, &problem.truth);

    let (mpi_dists, _) = coem_mpi(&problem.graph, 2, 30, 3);
    let mut mpi_correct = 0usize;
    for (d, &t) in mpi_dists.iter().zip(&problem.truth).take(nps) {
        mpi_correct += usize::from(usize::from(d[1] > d[0]) == t);
    }
    let mpi_acc = mpi_correct as f64 / nps as f64;

    let (mr_dists, _) = coem_mapreduce(
        &problem.graph,
        2,
        30,
        MapReduceConfig { job_startup: std::time::Duration::from_millis(1), ..Default::default() },
    );
    let mut mr_correct = 0usize;
    for (d, &t) in mr_dists.iter().zip(&problem.truth).take(nps) {
        mr_correct += usize::from(usize::from(d[1] > d[0]) == t);
    }
    let mr_acc = mr_correct as f64 / nps as f64;

    assert!(gl_acc > 0.85, "graphlab {gl_acc}");
    assert!(mpi_acc > 0.85, "mpi {mpi_acc}");
    assert!(mr_acc > 0.85, "mapreduce {mr_acc}");
}

#[test]
fn lbp_distributed_with_latency_converges() {
    let (mut g, truth) = webspam_mrf(400, 4, 0.3, 0.15, 9);
    let n = g.num_vertices() as u64;
    let bp = LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-4, dynamic: true, damping: 0.3 };
    GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(3)
        .scheduler(SchedulerKind::Priority)
        .latency(LatencyModel::fixed(std::time::Duration::from_micros(100)))
        .max_updates(40 * n)
        .partition(PartitionStrategy::BfsGrow)
        .run(bp.clone());
    assert!(total_residual(&g, &bp) < 1.0, "residual {}", total_residual(&g, &bp));
    let acc = graphlab::workloads::spam::spam_accuracy(&g, &truth);
    assert!(acc > 0.8, "accuracy {acc}");
}

/// ISSUE 4 acceptance: `stop_when` termination on the residual global —
/// PageRank halts once the equation residual falls below tolerance, with
/// **fewer updates** than the fixed-sweep (cap-terminated) baseline and
/// the **same ranks**, on both distributed engines.
#[test]
fn stop_when_converges_with_fewer_updates_than_fixed_sweeps() {
    let base = web_graph(400, 4, 13);
    let n = base.num_vertices() as u64;
    let oracle = exact_pagerank(&base, 0.15, 300);
    // BSP-style update: epsilon -1 reschedules unconditionally, so only
    // the terminator (cap or stop_when) ends the run.
    let pr = PageRank { alpha: 0.15, epsilon: -1.0, dynamic: true };
    // The residual contracts by ~(1−α) per sweep: 1e-6 needs ~85 Jacobi
    // sweeps (async in-place updates need fewer), so a 120-sweep cap
    // leaves the stop predicate a comfortable lead.
    let sweeps = 120u64;
    let tol = 1e-6;

    for engine in [EngineKind::Chromatic, EngineKind::Locking] {
        // Arm 1: fixed-sweep baseline, cap-terminated.
        let mut cap_g = base.clone();
        init_ranks(&mut cap_g);
        let cap_out = GraphLab::on(&mut cap_g)
            .engine(engine)
            .machines(3)
            .max_updates(sweeps * n)
            .run(pr.clone());
        let cap_ranks: Vec<f64> = cap_g.vertices().map(|v| *cap_g.vertex_data(v)).collect();
        assert!(l1_error(&cap_ranks, &oracle) < 1e-5, "{engine:?} cap arm diverged");

        // Arm 2: same program, aggregate-driven termination.
        let mut stop_g = base.clone();
        init_ranks(&mut stop_g);
        let stop_out = GraphLab::on(&mut stop_g)
            .engine(engine)
            .machines(3)
            .max_updates(sweeps * n)
            .sync(PAGERANK_RESIDUAL, RankResidual { alpha: 0.15 }, SyncCadence::Updates(n))
            .stop_when(move |g| g.get(PAGERANK_RESIDUAL).is_some_and(|r| *r < tol))
            .run(pr.clone());
        let stop_ranks: Vec<f64> = stop_g.vertices().map(|v| *stop_g.vertex_data(v)).collect();

        assert!(
            stop_out.metrics.updates < cap_out.metrics.updates,
            "{engine:?}: stop_when must beat the fixed-sweep baseline \
             ({} vs {} updates)",
            stop_out.metrics.updates,
            cap_out.metrics.updates,
        );
        let residual = *stop_out.globals.get(PAGERANK_RESIDUAL).expect("residual published");
        assert!(residual < tol, "{engine:?}: halted at residual {residual}");
        // Converges to the same ranks as the cap-terminated run: the L1
        // gap to the fixpoint is bounded by residual/α ≈ 7e-6 at tol.
        let gap = l1_error(&stop_ranks, &cap_ranks);
        assert!(gap < 1e-4, "{engine:?}: stop vs cap ranks L1 {gap}");
        assert!(l1_error(&stop_ranks, &oracle) < 1e-4, "{engine:?} stop arm vs oracle");
    }
}

#[test]
fn snapshot_recovery_end_to_end() {
    let base = web_graph(600, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut full = base.clone();
    init_ranks(&mut full);
    let out = GraphLab::on(&mut full)
        .engine(EngineKind::Locking)
        .machines(2)
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 400,
            max_snapshots: 1,
        })
        .run(pr.clone());
    assert!(out.metrics.snapshots >= 1);

    let mut restored = base.clone();
    graphlab::core::restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    GraphLab::on(&mut restored).run(pr);
    for v in full.vertices() {
        assert!(
            (full.vertex_data(v) - restored.vertex_data(v)).abs() < 1e-9,
            "divergence at {v}"
        );
    }
}

/// Regression for the ISSUE 2 headline bug: the asynchronous
/// Chandy-Lamport snapshot (Alg. 5) assumes per-channel FIFO delivery, and
/// `ec2_like()` (non-zero `per_kib` + jitter) is exactly the model under
/// which the old fabric reordered channels — a small schedule/release
/// overtaking a large scope-data message could tear the snapshot cut.
#[test]
fn async_snapshot_under_ec2_latency_restores_correctly() {
    let base = web_graph(400, 4, 23);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut full = base.clone();
    init_ranks(&mut full);
    let out = GraphLab::on(&mut full)
        .engine(EngineKind::Locking)
        .machines(3)
        .latency(LatencyModel::ec2_like())
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 300,
            max_snapshots: 1,
        })
        .run(pr.clone());
    assert!(out.metrics.snapshots >= 1);

    // A consistent checkpoint must converge to the same fixpoint as the
    // uninterrupted run.
    let mut restored = base.clone();
    graphlab::core::restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    GraphLab::on(&mut restored).run(pr);
    for v in full.vertices() {
        assert!(
            (full.vertex_data(v) - restored.vertex_data(v)).abs() < 1e-9,
            "divergence at {v}"
        );
    }
}

/// ISSUE 2 acceptance: batching cuts total cluster messages on PageRank
/// (locking engine, 8 machines) by at least 25% without changing the
/// converged ranks.
#[test]
fn batching_reduces_messages_and_preserves_ranks() {
    let base = web_graph(3_000, 4, 31);
    let oracle = exact_pagerank(&base, 0.15, 120);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    let mut msgs = [0u64; 2];
    for (i, policy) in [graphlab::core::BatchPolicy::disabled(), graphlab::core::BatchPolicy::default()]
        .into_iter()
        .enumerate()
    {
        let mut g = base.clone();
        init_ranks(&mut g);
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .configure(|c| c.batch = policy)
            .run(pr.clone());
        msgs[i] = out.metrics.total_messages;
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        assert!(l1_error(&ranks, &oracle) < 1e-6, "batch={i} l1 {}", l1_error(&ranks, &oracle));
    }
    assert!(
        (msgs[1] as f64) <= 0.75 * msgs[0] as f64,
        "batching saved only {:.1}% of {} messages",
        100.0 * (1.0 - msgs[1] as f64 / msgs[0] as f64),
        msgs[0],
    );
}

/// ISSUE 3 regression: version-aware delta scope sync + envelope
/// compression must not change what either engine computes under real
/// (`ec2_like`) latency — 8 machines, delta+compression on vs off.
#[test]
fn delta_sync_and_compression_preserve_pagerank_both_engines_under_latency() {
    let base = web_graph(1_200, 4, 19);
    let oracle = exact_pagerank(&base, 0.15, 150);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    for (arm, no_filter, policy) in [
        ("off", true, graphlab::core::BatchPolicy::uncompressed()),
        ("on", false, graphlab::core::BatchPolicy::default()),
    ] {
        for engine in [EngineKind::Locking, EngineKind::Chromatic] {
            let mut g = base.clone();
            init_ranks(&mut g);
            GraphLab::on(&mut g)
                .engine(engine)
                .machines(8)
                .latency(LatencyModel::ec2_like())
                .configure(|c| {
                    c.no_version_filter = no_filter;
                    c.batch = policy;
                })
                .run(pr.clone());
            let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
            let l1 = l1_error(&ranks, &oracle);
            assert!(l1 < 1e-6, "{engine:?} delta/compress {arm}: L1 {l1}");
        }
    }
}

/// ISSUE 3 regression: same on/off comparison for ALS (both engines,
/// `ec2_like`, 8 machines) — converged quality must be unaffected.
#[test]
fn delta_sync_and_compression_preserve_als_under_latency() {
    let problem = ratings_graph(240, 80, 10, 4, 3);
    let als = Als { d: 4, lambda: 0.05, epsilon: 1e-5, dynamic: true };
    let users = problem.users;
    let mut rmses: Vec<f64> = Vec::new();

    for (no_filter, policy) in [
        (true, graphlab::core::BatchPolicy::uncompressed()),
        (false, graphlab::core::BatchPolicy::default()),
    ] {
        let mut g = problem.graph.clone();
        GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .latency(LatencyModel::ec2_like())
            .scheduler(SchedulerKind::Priority)
            .max_updates(15_000)
            .configure(|c| {
                c.no_version_filter = no_filter;
                c.batch = policy;
            })
            .run(als.clone());
        rmses.push(train_rmse(&g));

        let mut g = problem.graph.clone();
        GraphLab::on(&mut g)
            .engine(EngineKind::Chromatic)
            .machines(8)
            .latency(LatencyModel::ec2_like())
            .coloring(Coloring::bipartite(problem.graph.num_vertices(), |v| v.index() >= users))
            .max_updates(15_000)
            .configure(|c| {
                c.no_version_filter = no_filter;
                c.batch = policy;
            })
            .run(als.clone());
        rmses.push(train_rmse(&g));
    }
    for (i, rmse) in rmses.iter().enumerate() {
        assert!(*rmse < 0.12, "arm {i} rmse {rmse}");
    }
    // Locking off vs on and chromatic off vs on each land on comparable
    // fits (execution order differs, the answers must not).
    assert!((rmses[0] - rmses[2]).abs() < 0.03, "locking arms diverged: {rmses:?}");
    assert!((rmses[1] - rmses[3]).abs() < 0.03, "chromatic arms diverged: {rmses:?}");
}

/// ISSUE 3 regression: an asynchronous snapshot cut **mid-run with delta
/// sync + compression on**, restored and re-converged on a fresh cluster
/// (again with delta sync on), must reach the uninterrupted run's
/// fixpoint. A remote-cache invalidation bug would skip a row carrying
/// the Alg. 5 snapshot marker or resume a restored cluster against stale
/// residency assumptions — either tears the cut.
#[test]
fn delta_sync_snapshot_restore_mid_run_is_consistent() {
    let base = web_graph(500, 4, 29);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut full = base.clone();
    init_ranks(&mut full);
    let out = GraphLab::on(&mut full)
        .engine(EngineKind::Locking)
        .machines(4)
        .latency(LatencyModel::ec2_like())
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 400,
            max_snapshots: 1,
        })
        .run(pr.clone());
    assert!(out.metrics.snapshots >= 1);

    // Restore the mid-run checkpoint and converge it on a *distributed*
    // cluster with delta sync still on (fresh remote-cache tables are the
    // restore-side invalidation).
    let mut restored = base.clone();
    graphlab::core::restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    GraphLab::on(&mut restored)
        .engine(EngineKind::Locking)
        .machines(4)
        .latency(LatencyModel::ec2_like())
        .run(pr);
    for v in full.vertices() {
        assert!(
            (full.vertex_data(v) - restored.vertex_data(v)).abs() < 1e-7,
            "divergence at {v}"
        );
    }
}

/// ISSUE 5 acceptance: kill one machine mid-run under `ec2_like()` for all
/// four {chromatic, locking} × {sync, async snapshot} cells. Every cell
/// must detect the death, roll the cluster back to the latest complete
/// checkpoint, and reconverge to the same fixpoint as the undisturbed run
/// — deterministically (fixed seeds, delivery-count kill triggers).
#[test]
fn kill_mid_run_recovers_all_four_cells() {
    let base = web_graph(500, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };
    let oracle = exact_pagerank(&base, 0.15, 200);

    // Kill points sit comfortably after the first checkpoint completes
    // (snapshots every 400 updates) and before the run winds down:
    // fault-free totals are ~8.7k envelopes (locking/sync), ~31k
    // (locking/async, Alg. 5 traffic included) and ~1.9k (chromatic).
    for (engine, mode, kill_at) in [
        (EngineKind::Locking, SnapshotMode::Synchronous, 4_000u64),
        (EngineKind::Locking, SnapshotMode::Asynchronous, 12_000),
        (EngineKind::Chromatic, SnapshotMode::Synchronous, 1_000),
        (EngineKind::Chromatic, SnapshotMode::Asynchronous, 1_000),
    ] {
        let snapshot = SnapshotConfig { mode, every_updates: 400, max_snapshots: 64 };

        let mut undisturbed = base.clone();
        init_ranks(&mut undisturbed);
        GraphLab::on(&mut undisturbed)
            .engine(engine)
            .machines(4)
            .latency(LatencyModel::ec2_like())
            .snapshot(snapshot)
            .run(pr.clone());
        let base_ranks: Vec<f64> =
            undisturbed.vertices().map(|v| *undisturbed.vertex_data(v)).collect();

        let mut killed = base.clone();
        init_ranks(&mut killed);
        let out = GraphLab::on(&mut killed)
            .engine(engine)
            .machines(4)
            .latency(LatencyModel::ec2_like())
            .snapshot(snapshot)
            .faults(FaultPlan::seeded(1).kill_and_restart(
                2,
                FaultTrigger::Deliveries(kill_at),
                FaultTrigger::Elapsed(std::time::Duration::from_millis(30)),
            ))
            .run(pr.clone());
        assert!(
            out.metrics.recoveries >= 1,
            "{engine:?}/{mode:?}: the kill at delivery {kill_at} must trigger a rollback"
        );
        let killed_ranks: Vec<f64> = killed.vertices().map(|v| *killed.vertex_data(v)).collect();
        let vs_base = l1_error(&killed_ranks, &base_ranks);
        assert!(
            vs_base < 1e-9,
            "{engine:?}/{mode:?}: recovered fixpoint drifted from the undisturbed run (L1 {vs_base})"
        );
        assert!(
            l1_error(&killed_ranks, &oracle) < 1e-6,
            "{engine:?}/{mode:?}: recovered run diverged from the oracle"
        );
    }
}

/// ISSUE 5 acceptance: a kill *before* any checkpoint completed cannot be
/// recovered — the run must fail with the clean "no complete checkpoint"
/// error through `try_run` (never hang, never panic).
#[test]
fn kill_before_first_checkpoint_fails_cleanly() {
    let base = web_graph(400, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };
    for engine in [EngineKind::Locking, EngineKind::Chromatic] {
        let mut g = base.clone();
        init_ranks(&mut g);
        let err = GraphLab::on(&mut g)
            .engine(engine)
            .machines(3)
            // Snapshots enabled but cadenced far beyond the kill point.
            .snapshot(SnapshotConfig {
                mode: SnapshotMode::Asynchronous,
                every_updates: 1_000_000,
                max_snapshots: 8,
            })
            .faults(FaultPlan::seeded(3).kill_and_restart(
                1,
                FaultTrigger::Deliveries(200),
                FaultTrigger::Elapsed(std::time::Duration::from_millis(10)),
            ))
            .try_run(pr.clone())
            .map(|out| out.metrics.recoveries)
            .expect_err("a kill with no checkpoint must fail the run");
        assert!(
            err.contains("no complete checkpoint"),
            "{engine:?}: unexpected failure message: {err}"
        );
    }
}

/// A permanent kill (no restart scheduled) is unrecoverable by design —
/// the victim's owned partition is gone. Every machine, including the
/// victim's own thread, must fail fast with the clean error rather than
/// sitting out the recovery deadline.
#[test]
fn permanent_kill_fails_fast_on_both_engines() {
    let base = web_graph(300, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };
    for engine in [EngineKind::Locking, EngineKind::Chromatic] {
        let start = std::time::Instant::now();
        let mut g = base.clone();
        init_ranks(&mut g);
        let err = GraphLab::on(&mut g)
            .engine(engine)
            .machines(3)
            .snapshot(SnapshotConfig {
                mode: SnapshotMode::Synchronous,
                every_updates: 200,
                max_snapshots: 64,
            })
            .faults(FaultPlan::seeded(5).kill(1, FaultTrigger::Deliveries(500)))
            .try_run(pr.clone())
            .map(|out| out.metrics.recoveries)
            .expect_err("a permanent kill must fail the run");
        assert!(err.contains("no restart scheduled"), "{engine:?}: {err}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "{engine:?}: permanent kill must fail fast, took {:?}",
            start.elapsed()
        );
    }
}

/// ISSUE 8 acceptance: under [`RecoveryMode::Adopt`] a permanent kill is
/// no longer fatal — the survivors adopt the dead machine's atoms
/// (reloading them from the DFS ingress journals, overlaying the latest
/// complete per-atom checkpoint) and reconverge to the undisturbed
/// fixpoint with zero cluster rollbacks.
#[test]
fn permanent_kill_adopts_and_reconverges_on_both_engines() {
    let base = web_graph(500, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };
    let oracle = exact_pagerank(&base, 0.15, 200);

    for (engine, kill_at) in [(EngineKind::Locking, 4_000u64), (EngineKind::Chromatic, 1_000)] {
        let snapshot =
            SnapshotConfig { mode: SnapshotMode::Synchronous, every_updates: 400, max_snapshots: 64 };

        let mut undisturbed = base.clone();
        init_ranks(&mut undisturbed);
        GraphLab::on(&mut undisturbed)
            .engine(engine)
            .machines(8)
            .latency(LatencyModel::ec2_like())
            .snapshot(snapshot)
            .run(pr.clone());
        let base_ranks: Vec<f64> =
            undisturbed.vertices().map(|v| *undisturbed.vertex_data(v)).collect();

        let mut killed = base.clone();
        init_ranks(&mut killed);
        let out = GraphLab::on(&mut killed)
            .engine(engine)
            .machines(8)
            .latency(LatencyModel::ec2_like())
            .snapshot(snapshot)
            .recovery(RecoveryMode::Adopt)
            .faults(FaultPlan::seeded(1).kill(5, FaultTrigger::Deliveries(kill_at)))
            .run(pr.clone());
        assert!(
            out.metrics.adoptions >= 1,
            "{engine:?}: the permanent kill at delivery {kill_at} must trigger an adoption"
        );
        assert_eq!(
            out.metrics.recoveries, 0,
            "{engine:?}: adoption is restart-free — no rollback may run"
        );
        let killed_ranks: Vec<f64> = killed.vertices().map(|v| *killed.vertex_data(v)).collect();
        let vs_base = l1_error(&killed_ranks, &base_ranks);
        assert!(
            vs_base < 1e-9,
            "{engine:?}: adopted fixpoint drifted from the undisturbed run (L1 {vs_base})"
        );
        assert!(
            l1_error(&killed_ranks, &oracle) < 1e-6,
            "{engine:?}: adopted run diverged from the oracle"
        );
    }
}

/// ISSUE 8 acceptance: with the fabric's oracle `K_DOWN` suppressed,
/// survivors learn of the same kill purely through lease expiry — the
/// master declares the death when the victim's lease runs out and
/// broadcasts the fabric-shaped notification itself — and recover through
/// the identical adoption path.
#[test]
fn lease_expiry_detects_death_without_oracle() {
    let base = web_graph(400, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };
    let oracle = exact_pagerank(&base, 0.15, 200);
    for (engine, kill_at) in [(EngineKind::Locking, 3_000u64), (EngineKind::Chromatic, 800)] {
        let mut g = base.clone();
        init_ranks(&mut g);
        let out = GraphLab::on(&mut g)
            .engine(engine)
            .machines(4)
            .snapshot(SnapshotConfig {
                mode: SnapshotMode::Synchronous,
                every_updates: 400,
                max_snapshots: 64,
            })
            .recovery(RecoveryMode::Adopt)
            .lease(std::time::Duration::from_millis(200))
            .faults(
                FaultPlan::seeded(7).kill(2, FaultTrigger::Deliveries(kill_at)).without_oracle(),
            )
            .run(pr.clone());
        assert!(
            out.metrics.adoptions >= 1,
            "{engine:?}: lease expiry must detect the silent death and trigger adoption"
        );
        assert_eq!(out.metrics.recoveries, 0, "{engine:?}: no rollback under adoption");
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        assert!(
            l1_error(&ranks, &oracle) < 1e-6,
            "{engine:?}: lease-recovered run diverged from the oracle"
        );
    }
}

#[test]
fn ingress_pipeline_is_usable_standalone() {
    // DistributedGraph: build atoms once, load for several cluster sizes.
    let g = web_graph(500, 3, 2);
    let dg = graphlab::core::DistributedGraph::build(&g, &PartitionStrategy::BfsGrow, 16, 1);
    for m in [1usize, 2, 5] {
        let parts = dg.load_all::<f64, f64>(m);
        let owned: usize = parts
            .iter()
            .map(|p| p.vertices.iter().filter(|v| v.owner == p.machine).count())
            .sum();
        assert_eq!(owned, 500, "{m} machines");
    }
}

/// ISSUE 10 (satellite): message-driven masters mean an idle cluster does
/// zero control work. With no counter-driven triggers configured the
/// counter-threshold note (`K_UPD_NOTE`) is never sent and no machine
/// ever expires an idle receive deadline; with a sync cadence the notes
/// appear — that is the mechanism that replaced the master's 2 ms
/// counter poll — and the master still takes zero scheduled wakeups.
#[test]
fn idle_cluster_does_zero_control_work() {
    use graphlab::core::messages::K_UPD_NOTE;

    let base = web_graph(400, 4, 21);
    let n = base.num_vertices() as u64;
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    // Arm 1: no sync, no snapshots → nothing for the master to time.
    let mut g = base.clone();
    init_ranks(&mut g);
    let out = GraphLab::on(&mut g).engine(EngineKind::Locking).machines(8).run(pr.clone());
    assert_eq!(
        out.metrics.idle_wakeups,
        vec![0u64; 8],
        "an idle cluster between work must take zero scheduled wakeups"
    );
    assert!(
        !out.metrics.bytes_by_kind.iter().any(|(k, _)| *k == K_UPD_NOTE),
        "K_UPD_NOTE sent although no counter-driven trigger is configured"
    );

    // Arm 2: a sync cadence makes workers announce their counters.
    let mut g = base.clone();
    init_ranks(&mut g);
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(8)
        .sync(PAGERANK_RESIDUAL, RankResidual { alpha: 0.15 }, SyncCadence::Updates(n))
        .run(pr);
    assert_eq!(out.metrics.idle_wakeups[0], 0, "master fell back to a timed wakeup");
    assert!(
        out.metrics.bytes_by_kind.iter().any(|(k, t)| *k == K_UPD_NOTE && t.msgs > 0),
        "counter notes must drive the master's sync triggers"
    );
}
