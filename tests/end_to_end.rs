//! Workspace-level integration tests: applications × engines × baselines.
//!
//! These validate the claims the benchmark harness relies on: all engines
//! (sequential reference, chromatic, locking) and all baselines
//! (MapReduce, Pregel, MPI) agree on the *answers*, so the performance
//! comparisons in EXPERIMENTS.md compare equal work.

use std::sync::Arc;

use graphlab::apps::als::{train_rmse, Als};
use graphlab::apps::coem::{accuracy, Coem};
use graphlab::apps::lbp::{total_residual, LoopyBp};
use graphlab::apps::pagerank::{exact_pagerank, init_ranks, l1_error, PageRank};
use graphlab::baselines::mapreduce::{coem_mapreduce, pagerank_mapreduce, MapReduceConfig};
use graphlab::baselines::mpi::coem_mpi;
use graphlab::baselines::pregel::{PregelConfig, PregelEngine, PregelPageRank};
use graphlab::core::{
    run_chromatic, run_locking, run_sequential, EngineConfig, InitialSchedule, PartitionStrategy,
    SchedulerKind, SequentialConfig, SnapshotConfig, SnapshotMode, SyncOp,
};
use graphlab::graph::{greedy_coloring, Coloring};
use graphlab::net::LatencyModel;
use graphlab::workloads::{nell_graph, ratings_graph, web_graph, webspam_mrf};

fn no_syncs<V, E>() -> Arc<Vec<Box<dyn SyncOp<V, E>>>> {
    Arc::new(Vec::new())
}

#[test]
fn pagerank_all_systems_agree() {
    let base = web_graph(2_000, 4, 5);
    let oracle = exact_pagerank(&base, 0.15, 60);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    // Sequential reference.
    let mut seq = base.clone();
    init_ranks(&mut seq);
    run_sequential(&mut seq, &pr, InitialSchedule::AllVertices, SequentialConfig::default());
    let seq_ranks: Vec<f64> = seq.vertices().map(|v| *seq.vertex_data(v)).collect();
    assert!(l1_error(&seq_ranks, &oracle) < 1e-6);

    // Chromatic engine (3 machines).
    let mut chro = base.clone();
    init_ranks(&mut chro);
    let coloring = greedy_coloring(&chro);
    run_chromatic(
        &mut chro,
        coloring,
        Arc::new(pr.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &EngineConfig::new(3),
        &PartitionStrategy::RandomHash,
    );
    let chro_ranks: Vec<f64> = chro.vertices().map(|v| *chro.vertex_data(v)).collect();
    assert!(l1_error(&chro_ranks, &oracle) < 1e-6, "chromatic {}", l1_error(&chro_ranks, &oracle));

    // Locking engine (3 machines).
    let mut lock = base.clone();
    init_ranks(&mut lock);
    run_locking(
        &mut lock,
        Arc::new(pr),
        InitialSchedule::AllVertices,
        no_syncs(),
        &EngineConfig::new(3),
        &PartitionStrategy::BfsGrow,
    );
    let lock_ranks: Vec<f64> = lock.vertices().map(|v| *lock.vertex_data(v)).collect();
    assert!(l1_error(&lock_ranks, &oracle) < 1e-6, "locking {}", l1_error(&lock_ranks, &oracle));

    // MapReduce (30 iterations of power iteration).
    let (mr_ranks, _) = pagerank_mapreduce(
        &base,
        0.15,
        60,
        MapReduceConfig { job_startup: std::time::Duration::from_millis(1), ..Default::default() },
    );
    assert!(l1_error(&mr_ranks, &oracle) < 1e-6, "mapreduce {}", l1_error(&mr_ranks, &oracle));

    // Pregel.
    let mut pregel = base.clone();
    init_ranks(&mut pregel);
    let engine = PregelEngine::new(PregelConfig { workers: 3, max_supersteps: 61 });
    engine.run(&mut pregel, &PregelPageRank { alpha: 0.15, epsilon: 0.0 }, |_, _| {});
    let pregel_ranks: Vec<f64> = pregel.vertices().map(|v| *pregel.vertex_data(v)).collect();
    assert!(l1_error(&pregel_ranks, &oracle) < 1e-6, "pregel {}", l1_error(&pregel_ranks, &oracle));
}

#[test]
fn als_engines_reach_comparable_rmse() {
    let problem = ratings_graph(120, 60, 8, 4, 3);
    let als = Als { d: 4, lambda: 0.05, epsilon: 1e-5, dynamic: true };

    let mut results = Vec::new();
    // Sequential.
    {
        let mut g = problem.graph.clone();
        run_sequential(
            &mut g,
            &als,
            InitialSchedule::AllVertices,
            SequentialConfig { max_updates: 20_000, ..Default::default() },
        );
        results.push(("sequential", train_rmse(&g)));
    }
    // Chromatic (bipartite colouring).
    {
        let mut g = problem.graph.clone();
        let users = problem.users;
        let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= users);
        let mut cfg = EngineConfig::new(3);
        cfg.max_updates = 20_000;
        run_chromatic(
            &mut g,
            coloring,
            Arc::new(als.clone()),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        results.push(("chromatic", train_rmse(&g)));
    }
    // Locking with priorities.
    {
        let mut g = problem.graph.clone();
        let mut cfg = EngineConfig::new(3);
        cfg.scheduler = SchedulerKind::Priority;
        cfg.max_updates = 20_000;
        run_locking(
            &mut g,
            Arc::new(als),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        results.push(("locking", train_rmse(&g)));
    }
    // All engines converge to a comparably good fit (λ-regularised floor).
    for (name, rmse) in &results {
        assert!(*rmse < 0.12, "{name} rmse {rmse}");
    }
    let best = results.iter().map(|(_, r)| *r).fold(f64::MAX, f64::min);
    for (name, rmse) in &results {
        assert!(*rmse < best * 2.0 + 0.02, "{name} rmse {rmse} vs best {best}");
    }
}

#[test]
fn coem_graphlab_matches_baselines() {
    let problem = nell_graph(120, 40, 2, 6, 0.2, 7);

    let mut g = problem.graph.clone();
    let nps = problem.noun_phrases;
    let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= nps);
    run_chromatic(
        &mut g,
        coloring,
        Arc::new(Coem { types: 2, epsilon: 1e-7, dynamic: true }),
        InitialSchedule::AllVertices,
        no_syncs(),
        &EngineConfig::new(3),
        &PartitionStrategy::RandomHash,
    );
    let gl_acc = accuracy(&g, &problem.truth);

    let (mpi_dists, _) = coem_mpi(&problem.graph, 2, 30, 3);
    let mut mpi_correct = 0usize;
    for (d, &t) in mpi_dists.iter().zip(&problem.truth).take(nps) {
        mpi_correct += usize::from(usize::from(d[1] > d[0]) == t);
    }
    let mpi_acc = mpi_correct as f64 / nps as f64;

    let (mr_dists, _) = coem_mapreduce(
        &problem.graph,
        2,
        30,
        MapReduceConfig { job_startup: std::time::Duration::from_millis(1), ..Default::default() },
    );
    let mut mr_correct = 0usize;
    for (d, &t) in mr_dists.iter().zip(&problem.truth).take(nps) {
        mr_correct += usize::from(usize::from(d[1] > d[0]) == t);
    }
    let mr_acc = mr_correct as f64 / nps as f64;

    assert!(gl_acc > 0.85, "graphlab {gl_acc}");
    assert!(mpi_acc > 0.85, "mpi {mpi_acc}");
    assert!(mr_acc > 0.85, "mapreduce {mr_acc}");
}

#[test]
fn lbp_distributed_with_latency_converges() {
    let (mut g, truth) = webspam_mrf(400, 4, 0.3, 0.15, 9);
    let mut cfg = EngineConfig::new(3);
    cfg.scheduler = SchedulerKind::Priority;
    cfg.latency = LatencyModel::fixed(std::time::Duration::from_micros(100));
    cfg.max_updates = 40 * g.num_vertices() as u64;
    let bp = LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-4, dynamic: true, damping: 0.3 };
    run_locking(
        &mut g,
        Arc::new(bp.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::BfsGrow,
    );
    assert!(total_residual(&g, &bp) < 1.0, "residual {}", total_residual(&g, &bp));
    let acc = graphlab::workloads::spam::spam_accuracy(&g, &truth);
    assert!(acc > 0.8, "accuracy {acc}");
}

#[test]
fn snapshot_recovery_end_to_end() {
    let base = web_graph(600, 4, 17);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut full = base.clone();
    init_ranks(&mut full);
    let mut cfg = EngineConfig::new(2);
    cfg.snapshot = SnapshotConfig {
        mode: SnapshotMode::Asynchronous,
        every_updates: 400,
        max_snapshots: 1,
    };
    let out = run_locking(
        &mut full,
        Arc::new(pr.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.snapshots >= 1);

    let mut restored = base.clone();
    graphlab::core::restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    run_sequential(&mut restored, &pr, InitialSchedule::AllVertices, SequentialConfig::default());
    for v in full.vertices() {
        assert!(
            (full.vertex_data(v) - restored.vertex_data(v)).abs() < 1e-9,
            "divergence at {v}"
        );
    }
}

/// Regression for the ISSUE 2 headline bug: the asynchronous
/// Chandy-Lamport snapshot (Alg. 5) assumes per-channel FIFO delivery, and
/// `ec2_like()` (non-zero `per_kib` + jitter) is exactly the model under
/// which the old fabric reordered channels — a small schedule/release
/// overtaking a large scope-data message could tear the snapshot cut.
#[test]
fn async_snapshot_under_ec2_latency_restores_correctly() {
    let base = web_graph(400, 4, 23);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };

    let mut full = base.clone();
    init_ranks(&mut full);
    let mut cfg = EngineConfig::new(3);
    cfg.latency = LatencyModel::ec2_like();
    cfg.snapshot = SnapshotConfig {
        mode: SnapshotMode::Asynchronous,
        every_updates: 300,
        max_snapshots: 1,
    };
    let out = run_locking(
        &mut full,
        Arc::new(pr.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.snapshots >= 1);

    // A consistent checkpoint must converge to the same fixpoint as the
    // uninterrupted run.
    let mut restored = base.clone();
    graphlab::core::restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    run_sequential(&mut restored, &pr, InitialSchedule::AllVertices, SequentialConfig::default());
    for v in full.vertices() {
        assert!(
            (full.vertex_data(v) - restored.vertex_data(v)).abs() < 1e-9,
            "divergence at {v}"
        );
    }
}

/// ISSUE 2 acceptance: batching cuts total cluster messages on PageRank
/// (locking engine, 8 machines) by at least 25% without changing the
/// converged ranks.
#[test]
fn batching_reduces_messages_and_preserves_ranks() {
    let base = web_graph(3_000, 4, 31);
    let oracle = exact_pagerank(&base, 0.15, 120);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    let mut msgs = [0u64; 2];
    for (i, policy) in [graphlab::core::BatchPolicy::disabled(), graphlab::core::BatchPolicy::default()]
        .into_iter()
        .enumerate()
    {
        let mut g = base.clone();
        init_ranks(&mut g);
        let mut cfg = EngineConfig::new(8);
        cfg.batch = policy;
        let out = run_locking(
            &mut g,
            Arc::new(pr.clone()),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        msgs[i] = out.metrics.total_messages;
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        assert!(l1_error(&ranks, &oracle) < 1e-6, "batch={i} l1 {}", l1_error(&ranks, &oracle));
    }
    assert!(
        (msgs[1] as f64) <= 0.75 * msgs[0] as f64,
        "batching saved only {:.1}% of {} messages",
        100.0 * (1.0 - msgs[1] as f64 / msgs[0] as f64),
        msgs[0],
    );
}

/// ISSUE 3 regression: version-aware delta scope sync + envelope
/// compression must not change what either engine computes under real
/// (`ec2_like`) latency — 8 machines, delta+compression on vs off.
#[test]
fn delta_sync_and_compression_preserve_pagerank_both_engines_under_latency() {
    let base = web_graph(1_200, 4, 19);
    let oracle = exact_pagerank(&base, 0.15, 150);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    for (arm, no_filter, policy) in [
        ("off", true, graphlab::core::BatchPolicy::uncompressed()),
        ("on", false, graphlab::core::BatchPolicy::default()),
    ] {
        let mut cfg = EngineConfig::new(8);
        cfg.latency = LatencyModel::ec2_like();
        cfg.no_version_filter = no_filter;
        cfg.batch = policy;

        let mut lock = base.clone();
        init_ranks(&mut lock);
        run_locking(
            &mut lock,
            Arc::new(pr.clone()),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        let ranks: Vec<f64> = lock.vertices().map(|v| *lock.vertex_data(v)).collect();
        let l1 = l1_error(&ranks, &oracle);
        assert!(l1 < 1e-6, "locking delta/compress {arm}: L1 {l1}");

        let mut chro = base.clone();
        init_ranks(&mut chro);
        let coloring = greedy_coloring(&chro);
        run_chromatic(
            &mut chro,
            coloring,
            Arc::new(pr.clone()),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        let ranks: Vec<f64> = chro.vertices().map(|v| *chro.vertex_data(v)).collect();
        let l1 = l1_error(&ranks, &oracle);
        assert!(l1 < 1e-6, "chromatic delta/compress {arm}: L1 {l1}");
    }
}

/// ISSUE 3 regression: same on/off comparison for ALS (both engines,
/// `ec2_like`, 8 machines) — converged quality must be unaffected.
#[test]
fn delta_sync_and_compression_preserve_als_under_latency() {
    let problem = ratings_graph(240, 80, 10, 4, 3);
    let als = Als { d: 4, lambda: 0.05, epsilon: 1e-5, dynamic: true };
    let mut rmses: Vec<f64> = Vec::new();

    for (no_filter, policy) in [
        (true, graphlab::core::BatchPolicy::uncompressed()),
        (false, graphlab::core::BatchPolicy::default()),
    ] {
        let mut cfg = EngineConfig::new(8);
        cfg.latency = LatencyModel::ec2_like();
        cfg.no_version_filter = no_filter;
        cfg.batch = policy;
        cfg.scheduler = SchedulerKind::Priority;
        cfg.max_updates = 15_000;

        let mut g = problem.graph.clone();
        run_locking(
            &mut g,
            Arc::new(als.clone()),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        rmses.push(train_rmse(&g));

        let mut g = problem.graph.clone();
        let users = problem.users;
        let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= users);
        let mut cfg = cfg.clone();
        cfg.scheduler = SchedulerKind::Fifo;
        run_chromatic(
            &mut g,
            coloring,
            Arc::new(als.clone()),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        rmses.push(train_rmse(&g));
    }
    for (i, rmse) in rmses.iter().enumerate() {
        assert!(*rmse < 0.12, "arm {i} rmse {rmse}");
    }
    // Locking off vs on and chromatic off vs on each land on comparable
    // fits (execution order differs, the answers must not).
    assert!((rmses[0] - rmses[2]).abs() < 0.03, "locking arms diverged: {rmses:?}");
    assert!((rmses[1] - rmses[3]).abs() < 0.03, "chromatic arms diverged: {rmses:?}");
}

/// ISSUE 3 regression: an asynchronous snapshot cut **mid-run with delta
/// sync + compression on**, restored and re-converged on a fresh cluster
/// (again with delta sync on), must reach the uninterrupted run's
/// fixpoint. A remote-cache invalidation bug would skip a row carrying
/// the Alg. 5 snapshot marker or resume a restored cluster against stale
/// residency assumptions — either tears the cut.
#[test]
fn delta_sync_snapshot_restore_mid_run_is_consistent() {
    let base = web_graph(500, 4, 29);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true };
    let mut cfg = EngineConfig::new(4);
    cfg.latency = LatencyModel::ec2_like();
    cfg.snapshot = SnapshotConfig {
        mode: SnapshotMode::Asynchronous,
        every_updates: 400,
        max_snapshots: 1,
    };

    let mut full = base.clone();
    init_ranks(&mut full);
    let out = run_locking(
        &mut full,
        Arc::new(pr.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.snapshots >= 1);

    // Restore the mid-run checkpoint and converge it on a *distributed*
    // cluster with delta sync still on (fresh remote-cache tables are the
    // restore-side invalidation).
    let mut restored = base.clone();
    graphlab::core::restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).expect("restore");
    let mut cfg2 = EngineConfig::new(4);
    cfg2.latency = LatencyModel::ec2_like();
    run_locking(
        &mut restored,
        Arc::new(pr.clone()),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg2,
        &PartitionStrategy::RandomHash,
    );
    for v in full.vertices() {
        assert!(
            (full.vertex_data(v) - restored.vertex_data(v)).abs() < 1e-7,
            "divergence at {v}"
        );
    }
}

#[test]
fn ingress_pipeline_is_usable_standalone() {
    // DistributedGraph: build atoms once, load for several cluster sizes.
    let g = web_graph(500, 3, 2);
    let dg = graphlab::core::DistributedGraph::build(&g, &PartitionStrategy::BfsGrow, 16, 1);
    for m in [1usize, 2, 5] {
        let parts = dg.load_all::<f64, f64>(m);
        let owned: usize = parts
            .iter()
            .map(|p| p.vertices.iter().filter(|v| v.owner == p.machine).count())
            .sum();
        assert_eq!(owned, 500, "{m} machines");
    }
}
