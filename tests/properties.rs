//! Property-based tests (proptest) over the core data structures and
//! distributed invariants.

use proptest::prelude::*;

use graphlab::atoms::{build_atoms, load_machine_part, write_atoms, SimDfs, VertexPartition};
use graphlab::atoms::placement::Placement;
use graphlab::graph::{
    greedy_coloring, second_order_coloring, verify_coloring, DataGraph, GraphBuilder, MachineId,
    VertexId,
};
use graphlab::net::codec::{decode_from, encode_to_bytes};

/// Random graph strategy: `n` vertices with arbitrary f64 data, edge list
/// over them.
fn arb_graph() -> impl Strategy<Value = DataGraph<f64, f64>> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, -100.0f64..100.0), 0..120);
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_vertex(i as f64 * 0.5);
            }
            for (s, d, w) in edges {
                if s != d {
                    b.add_edge(VertexId(s as u32), VertexId(d as u32), w).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrip_vecs(v in proptest::collection::vec(-1e12f64..1e12, 0..64)) {
        let enc = encode_to_bytes(&v);
        prop_assert_eq!(decode_from::<Vec<f64>>(enc), Some(v));
    }

    #[test]
    fn codec_roundtrip_pairs(v in proptest::collection::vec((0u32..u32::MAX, -1e6f64..1e6), 0..32)) {
        let tagged: Vec<(VertexId, f64)> = v.into_iter().map(|(a, b)| (VertexId(a), b)).collect();
        let enc = encode_to_bytes(&tagged);
        prop_assert_eq!(decode_from::<Vec<(VertexId, f64)>>(enc), Some(tagged));
    }

    #[test]
    fn greedy_coloring_is_always_proper(g in arb_graph()) {
        let c = greedy_coloring(&g);
        prop_assert!(verify_coloring(&g, &c, 1));
    }

    #[test]
    fn second_order_coloring_is_distance2_proper(g in arb_graph()) {
        let c = second_order_coloring(&g);
        prop_assert!(verify_coloring(&g, &c, 2));
    }

    #[test]
    fn csr_adjacency_is_consistent(g in arb_graph()) {
        // Every edge appears exactly once in each endpoint's adjacency.
        let mut counts = vec![0usize; g.num_edges()];
        for v in g.vertices() {
            for e in g.adj(v) {
                counts[e.edge.index()] += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn random_partition_covers_and_balances(n in 1usize..500, k in 1usize..17, seed in 0u64..1000) {
        let p = VertexPartition::random_hash(n, k, seed);
        prop_assert_eq!(p.atom_sizes().iter().sum::<usize>(), n);
        prop_assert_eq!(p.len(), n);
    }

    #[test]
    fn refinement_never_increases_cut(g in arb_graph(), k in 2usize..6, seed in 0u64..100) {
        let mut p = VertexPartition::random_hash(g.num_vertices(), k, seed);
        let before = p.cut_edges(&g);
        p.refine(&g, 2, 1.3);
        prop_assert!(p.cut_edges(&g) <= before);
        prop_assert_eq!(p.atom_sizes().iter().sum::<usize>(), g.num_vertices());
    }

    #[test]
    fn atom_ingress_reconstructs_graph(g in arb_graph(), k in 1usize..8, machines in 1usize..5) {
        let p = VertexPartition::random_hash(g.num_vertices(), k, 7);
        let dfs = SimDfs::new();
        let (atoms, index) = build_atoms(&g, &p, "t");
        write_atoms(&dfs, "t", &atoms, &index);
        let placement = Placement::compute(&index, machines);

        let mut vertex_owned = vec![0usize; g.num_vertices()];
        let mut edge_owned = vec![0usize; g.num_edges()];
        for m in 0..machines {
            let part = load_machine_part::<f64, f64>(&dfs, &index, &placement, MachineId::from(m)).unwrap();
            for v in &part.vertices {
                if v.owner == part.machine {
                    vertex_owned[v.gvid.index()] += 1;
                    // Owned data matches the source graph.
                    prop_assert_eq!(*g.vertex_data(v.gvid), v.data);
                }
            }
            for e in &part.edges {
                if e.owner == part.machine {
                    edge_owned[e.geid.index()] += 1;
                }
                prop_assert_eq!(g.edge_endpoints(e.geid), (e.src, e.dst));
            }
            // Local scopes complete: every owned vertex sees all its edges.
            let local_edges: std::collections::HashSet<_> = part.edges.iter().map(|e| e.geid).collect();
            for v in part.vertices.iter().filter(|v| v.owner == part.machine) {
                for adj in g.adj(v.gvid) {
                    prop_assert!(local_edges.contains(&adj.edge));
                }
            }
        }
        prop_assert!(vertex_owned.iter().all(|&c| c == 1), "each vertex owned exactly once");
        prop_assert!(edge_owned.iter().all(|&c| c == 1), "each edge owned exactly once");
    }

    #[test]
    fn journal_roundtrip_arbitrary_atoms(
        vdata in proptest::collection::vec(-1e9f64..1e9, 1..20),
        k in 1usize..5,
    ) {
        let mut b = GraphBuilder::new();
        for &d in &vdata {
            b.add_vertex(d);
        }
        for i in 1..vdata.len() {
            b.add_edge(VertexId((i - 1) as u32), VertexId(i as u32), i as f64).unwrap();
        }
        let g: DataGraph<f64, f64> = b.build();
        let p = VertexPartition::random_hash(g.num_vertices(), k, 3);
        let (atoms, _) = build_atoms(&g, &p, "t");
        for atom in atoms {
            let bytes = atom.encode_journal();
            let back = graphlab::atoms::Atom::<f64, f64>::decode_journal(bytes).unwrap();
            prop_assert_eq!(back, atom);
        }
    }
}

/// Fabric delivery-order property (ISSUE 2): per-(src, dst) delivery is
/// FIFO under *arbitrary* latency models — fixed, bandwidth-proportional
/// and jittered terms in any combination. Before the per-channel FIFO
/// clamp, any model with `per_kib` or `jitter` non-zero let a small later
/// message overtake an earlier large one.
mod fabric {
    use super::*;
    use graphlab::net::{LatencyModel, SimNet};
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn per_channel_delivery_is_fifo_under_any_latency(
            fixed_us in 0u64..200,
            per_kib_us in 0u64..100,
            jitter_us in 0u64..100,
            sizes in proptest::collection::vec(0usize..4096, 1..20),
            seed in 1u64..1_000,
        ) {
            let model = LatencyModel {
                fixed: Duration::from_micros(fixed_us),
                per_kib: Duration::from_micros(per_kib_us),
                jitter: Duration::from_micros(jitter_us),
            };
            let n = 3usize;
            let (_net, eps) = SimNet::with_seed(n, model, seed);
            // Every machine sends the same indexed sequence (kind = index,
            // payload sizes varied to provoke bandwidth-term reorders) to
            // every other machine.
            for (i, ep) in eps.iter().enumerate() {
                for (k, &sz) in sizes.iter().enumerate() {
                    for j in 0..n {
                        if i != j {
                            ep.send(
                                MachineId::from(j),
                                k as u16,
                                bytes::Bytes::from(vec![0u8; sz]),
                            );
                        }
                    }
                }
            }
            // Each receiver must observe every sender's sequence in order.
            for (j, ep) in eps.iter().enumerate() {
                let mut next = vec![0u16; n];
                for _ in 0..sizes.len() * (n - 1) {
                    let env = ep.recv_timeout(Duration::from_secs(20)).expect("delivery");
                    prop_assert_eq!(
                        env.kind, next[env.src.index()],
                        "reorder on channel m{} -> m{}", env.src.index(), j
                    );
                    next[env.src.index()] += 1;
                }
            }
        }
    }
}

/// ISSUE 3: exhaustive wire-codec property suite. Every `Codec` impl in
/// `graphlab_core::messages` round-trips on arbitrary payloads, versions
/// and `Bytes` lengths, as do the varint/zigzag/gap-encoding primitives
/// they are built from.
mod wire_codec {
    use super::*;
    use bytes::{Bytes, BytesMut};
    use graphlab::core::messages::*;
    use graphlab::graph::{EdgeId, MachineId};
    use graphlab::net::codec::{
        get_id_deltas, get_uvarint, put_id_deltas, put_uvarint, unzigzag, zigzag,
    };
    use graphlab::net::termination::Token;
    use graphlab::net::Codec;

    fn rt<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let enc = encode_to_bytes(&v);
        let dec = decode_from::<T>(enc);
        assert_eq!(dec.as_ref(), Some(&v), "roundtrip failed");
    }

    fn arb_bytes() -> impl Strategy<Value = Bytes> {
        proptest::collection::vec(0u32..256, 0..48)
            .prop_map(|v| Bytes::from(v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()))
    }

    fn arb_vrow() -> impl Strategy<Value = VertexRow> {
        (0u32..u32::MAX, 0u64..u64::MAX, 0u32..u32::MAX, arb_bytes()).prop_map(
            |(vid, version, snap, data)| VertexRow { vid: VertexId(vid), version, snap, data },
        )
    }

    fn arb_erow() -> impl Strategy<Value = EdgeRow> {
        (0u32..u32::MAX, 0u64..u64::MAX, arb_bytes())
            .prop_map(|(eid, version, data)| EdgeRow { eid: EdgeId(eid), version, data })
    }

    /// Schedule priorities travel as f32 by design; generate exactly
    /// f32-representable values so equality round-trips.
    fn arb_sched() -> impl Strategy<Value = ScheduleMsg> {
        proptest::collection::vec((0u32..u32::MAX, -1e30f32..1e30), 0..16).prop_map(|tasks| {
            ScheduleMsg {
                tasks: tasks.into_iter().map(|(v, p)| (VertexId(v), p as f64)).collect(),
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn uvarint_roundtrips(v in 0u64..u64::MAX) {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut b = buf.freeze();
            prop_assert_eq!(get_uvarint(&mut b), Some(v));
            prop_assert!(b.is_empty());
        }

        #[test]
        fn zigzag_roundtrips(v in i64::MIN..i64::MAX) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
            let enc = encode_to_bytes(&v);
            prop_assert_eq!(decode_from::<i64>(enc), Some(v));
        }

        #[test]
        fn scalar_codecs_roundtrip(
            a in 0u32..u32::MAX,
            b in 0u64..u64::MAX,
            c in 0u32..65536,
            f in -1e300f64..1e300,
        ) {
            let enc = encode_to_bytes(&a);
            prop_assert_eq!(decode_from::<u32>(enc), Some(a));
            let enc = encode_to_bytes(&b);
            prop_assert_eq!(decode_from::<u64>(enc), Some(b));
            let c = c as u16;
            let enc = encode_to_bytes(&c);
            prop_assert_eq!(decode_from::<u16>(enc), Some(c));
            let enc = encode_to_bytes(&f);
            prop_assert_eq!(decode_from::<f64>(enc), Some(f));
        }

        #[test]
        fn id_deltas_roundtrip_sorted(ids in proptest::collection::vec(0u32..u32::MAX, 0..64)) {
            let mut ids = ids;
            ids.sort_unstable();
            let mut buf = BytesMut::new();
            put_id_deltas(&mut buf, ids.len(), ids.iter().copied());
            // Gap encoding beats one varint per id on dense sorted runs and
            // never exceeds ~5 bytes per id.
            prop_assert!(buf.len() <= 5 + ids.len() * 5);
            let mut b = buf.freeze();
            prop_assert_eq!(get_id_deltas(&mut b), Some(ids));
            prop_assert!(b.is_empty());
        }

        #[test]
        fn vertex_rows_roundtrip(row in arb_vrow()) { rt(row); }

        #[test]
        fn edge_rows_roundtrip(row in arb_erow()) { rt(row); }

        #[test]
        fn schedule_msgs_roundtrip(msg in arb_sched()) { rt(msg); }

        #[test]
        fn step_tagged_roundtrip(
            step in 0u64..u64::MAX,
            phase in 0u32..2,
            row in arb_vrow(),
            erow in arb_erow(),
            sched in arb_sched(),
        ) {
            rt(StepTagged { step, phase: phase as u8, inner: row });
            rt(StepTagged { step, phase: phase as u8, inner: erow });
            rt(StepTagged { step, phase: phase as u8, inner: sched });
        }

        #[test]
        fn flush_msgs_roundtrip(
            step in 0u64..u64::MAX,
            count in 0u64..u64::MAX,
            updates in 0u64..u64::MAX,
            pending in 0u64..u64::MAX,
        ) {
            rt(FlushMsg { step, count, updates, pending });
        }

        #[test]
        fn sync_partial_msgs_roundtrip(
            cycle in 0u64..u64::MAX,
            partials in proptest::collection::vec((0u32..u32::MAX, arb_bytes()), 0..5),
            pending in 0u64..u64::MAX,
            updates in 0u64..u64::MAX,
        ) {
            rt(SyncPartialMsg { cycle, partials: partials.clone(), pending, updates });
            rt(LockSyncPartialMsg { epoch: cycle, partials });
        }

        #[test]
        fn sync_globals_msgs_roundtrip(
            cycle in 0u64..u64::MAX,
            rows in proptest::collection::vec(
                (0u32..u32::MAX, 0u64..u64::MAX, arb_bytes()),
                0..5,
            ),
            halt in 0u32..2,
            snapshot in 0u64..u64::MAX,
        ) {
            rt(SyncGlobalsMsg {
                cycle,
                globals: rows.clone(),
                halt: halt == 1,
                snapshot: if halt == 1 { Some(snapshot) } else { None },
            });
        }

        #[test]
        fn lock_req_msgs_roundtrip(
            requester in 0u32..u32::MAX,
            reqid in 0u64..u64::MAX,
            scope_v in 0u32..u32::MAX,
            machines in proptest::collection::vec(0u32..u32::MAX, 0..10),
            model in 0u32..3,
        ) {
            rt(LockReqMsg {
                requester: MachineId(requester as u16),
                reqid,
                scope_v: VertexId(scope_v),
                machines: machines.into_iter().map(|m| MachineId(m as u16)).collect(),
                model: model as u8,
            });
        }

        #[test]
        fn scope_data_msgs_roundtrip(
            reqid in 0u64..u64::MAX,
            vrows in proptest::collection::vec(arb_vrow(), 0..8),
            erows in proptest::collection::vec(arb_erow(), 0..8),
            vsame in 0u32..u32::MAX,
            esame in 0u32..u32::MAX,
        ) {
            rt(ScopeDataMsg { reqid, vrows, erows, vsame, esame });
        }

        #[test]
        fn release_msgs_roundtrip(
            reqid in 0u64..u64::MAX,
            vwrites in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, arb_bytes()), 0..8),
            ewrites in proptest::collection::vec((0u32..u32::MAX, arb_bytes()), 0..8),
        ) {
            rt(ReleaseMsg {
                reqid,
                vwrites: vwrites.into_iter().map(|(v, s, b)| (VertexId(v), s, b)).collect(),
                ewrites: ewrites.into_iter().map(|(e, b)| (EdgeId(e), b)).collect(),
            });
        }

        #[test]
        fn snapshot_msgs_roundtrip(
            snap in 0u64..u64::MAX,
            counts in proptest::collection::vec(0u64..u64::MAX, 0..10),
        ) {
            rt(SnapReadyMsg { snap, sent_to: counts.clone() });
            rt(SnapFlushMsg { snap, expect_from: counts });
        }

        #[test]
        fn token_msgs_roundtrip(
            count in i64::MIN..i64::MAX,
            black in 0u32..2,
            round in 0u32..u32::MAX,
        ) {
            rt(TokenMsg(Token { count, black: black == 1, round }));
        }

        /// ISSUE 10: the counter-threshold note (`UpdNoteMsg`) behind the
        /// message-driven master roundtrips for any sender and count.
        #[test]
        fn upd_note_msgs_roundtrip(
            from in 0u32..u32::MAX,
            updates in 0u64..u64::MAX,
        ) {
            rt(UpdNoteMsg { from: MachineId(from as u16), updates });
        }

        #[test]
        fn recovery_msgs_roundtrip(
            era in 0u32..u32::MAX,
            snap in 0u64..u64::MAX,
            reason_bytes in proptest::collection::vec(32u32..127, 0..48),
        ) {
            rt(RecoverReadyMsg { era });
            rt(RollbackMsg { era, snap });
            rt(RecoverEraMsg { era });
            let reason: String = reason_bytes.into_iter().map(|b| b as u8 as char).collect();
            rt(RecoverAbortMsg { era, reason });
        }

        /// ISSUE 8: the adoption order (`AdoptPlanMsg`) and ghost round
        /// (`AdoptDataMsg`) roundtrip for arbitrary placements and rows.
        #[test]
        fn adoption_msgs_roundtrip(
            era in 0u32..u32::MAX,
            dead in proptest::collection::vec(0u32..u32::MAX, 0..6),
            atoms in 1usize..64,
            machines in 1usize..12,
            snap in 0u64..u64::MAX,
            has_snap in 0u32..2,
            vrows in proptest::collection::vec((0u32..u32::MAX, arb_bytes()), 0..8),
            erows in proptest::collection::vec((0u32..u32::MAX, arb_bytes()), 0..8),
        ) {
            rt(AdoptPlanMsg {
                era,
                dead: dead.into_iter().map(|d| d as u16).collect(),
                placement: graphlab::atoms::placement::Placement::round_robin(atoms, machines),
                snap: if has_snap == 1 { Some(snap) } else { None },
            });
            rt(AdoptDataMsg {
                era,
                vrows: vrows.into_iter().map(|(v, b)| (VertexId(v), b)).collect(),
                erows: erows.into_iter().map(|(e, b)| (EdgeId(e), b)).collect(),
            });
        }
    }

    #[test]
    fn schedule_priority_infinity_survives_f32_wire() {
        // The snapshot priority must survive the f32 wire representation.
        rt(ScheduleMsg { tasks: vec![(VertexId(1), f64::INFINITY)] });
    }
}

/// ISSUE 3: the LZSS pass under the batch envelopes decompresses to
/// exactly what was compressed, for every byte string, and the batcher's
/// compressed envelopes deliver the original messages in order.
mod compression {
    use super::*;
    use bytes::Bytes;
    use graphlab::graph::MachineId;
    use graphlab::net::compress::{compress, decompress};
    use graphlab::net::{BatchPolicy, Batcher, LatencyModel, SimNet};
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn compress_roundtrips_arbitrary_bytes(data in proptest::collection::vec(0u32..256, 0..2000)) {
            let data: Vec<u8> = data.into_iter().map(|b| b as u8).collect();
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).as_deref(), Some(&data[..]));
        }

        #[test]
        fn compress_roundtrips_repetitive_structures(
            unit in proptest::collection::vec(0u32..256, 1..24),
            reps in 1usize..200,
        ) {
            // Highly repetitive input exercises the match/overlap paths.
            let unit: Vec<u8> = unit.into_iter().map(|b| b as u8).collect();
            let data: Vec<u8> = std::iter::repeat_n(unit.iter().copied(), reps).flatten().collect();
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).as_deref(), Some(&data[..]));
            if data.len() > 256 {
                prop_assert!(packed.len() < data.len(), "repetitive data must shrink");
            }
        }

        #[test]
        fn batcher_delivers_compressed_envelopes_intact(
            payloads in proptest::collection::vec((0u32..256, 0usize..900), 1..40),
        ) {
            // Mixed compressible (constant-fill) payload sizes through a
            // compressing batcher: contents and order must be preserved.
            let (_net, mut eps) = SimNet::new(2, LatencyModel::ZERO);
            let mut b1 = Batcher::new(eps.pop().unwrap().into(), BatchPolicy::default());
            let mut b0 = Batcher::new(eps.pop().unwrap().into(), BatchPolicy::default());
            for (k, (fill, size)) in payloads.iter().enumerate() {
                b0.send(MachineId(1), k as u16, Bytes::from(vec![*fill as u8; *size]));
            }
            b0.flush_all();
            for (k, (fill, size)) in payloads.iter().enumerate() {
                let env = b1.recv_timeout(Duration::from_secs(5)).expect("delivery");
                prop_assert_eq!(env.kind, k as u16);
                prop_assert_eq!(env.payload.len(), *size);
                prop_assert!(env.payload.iter().all(|&b| b == *fill as u8));
            }
        }
    }
}

/// Serializability property: the locking engine's fixpoint equals the
/// sequential engine's fixpoint for a confluent update function
/// (max-diffusion), on random graphs and cluster sizes — both driven
/// through the builder.
mod serializability {
    use super::*;
    use graphlab::core::{EngineKind, GraphLab, UpdateContext, UpdateFunction};

    struct MaxDiffusion;
    impl UpdateFunction<f64, f64> for MaxDiffusion {
        fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
            let mut best = *ctx.vertex_data();
            for i in 0..ctx.num_neighbors() {
                best = best.max(*ctx.nbr_data(i));
            }
            if best > *ctx.vertex_data() {
                *ctx.vertex_data_mut() = best;
                for i in 0..ctx.num_neighbors() {
                    ctx.schedule_nbr(i, 1.0);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn locking_engine_fixpoint_matches_sequential(g in arb_graph(), machines in 1usize..4) {
            let mut seq = g.clone();
            GraphLab::on(&mut seq).run(MaxDiffusion);
            let mut dist = g.clone();
            GraphLab::on(&mut dist)
                .engine(EngineKind::Locking)
                .machines(machines)
                .run(MaxDiffusion);
            for v in g.vertices() {
                prop_assert_eq!(seq.vertex_data(v), dist.vertex_data(v));
            }
        }
    }
}

/// ISSUE 4: typed-aggregate codec roundtrip properties. The sync plumbing
/// ships accumulators as codec bytes tagged by `Copy` handle ids; these
/// pin (a) that arbitrary accumulator shapes survive the wire and (b)
/// that folding encoded partials in any machine order reproduces the
/// typed fold (associativity/commutativity of the combine over the codec
/// boundary).
mod typed_sync {
    use super::*;
    use graphlab::core::{Aggregate, EngineKind, FnSync, GlobalHandle, GraphLab, SyncCadence, SyncScope};

    /// The custom accumulator shape used by the distributed mean test:
    /// (count, sum) pairs, finalized to a scalar.
    struct Moments;
    impl Aggregate<f64, f64> for Moments {
        type Acc = (u64, Vec<f64>);
        type Out = Vec<f64>;
        fn init(&self) -> (u64, Vec<f64>) {
            (0, vec![0.0, 0.0])
        }
        fn map(&self, s: &SyncScope<'_, f64, f64>) -> (u64, Vec<f64>) {
            let x = *s.vertex_data();
            (1, vec![x, x * x])
        }
        fn combine(&self, acc: &mut (u64, Vec<f64>), part: (u64, Vec<f64>)) {
            acc.0 += part.0;
            for (a, p) in acc.1.iter_mut().zip(part.1) {
                *a += p;
            }
        }
        fn finalize(&self, acc: (u64, Vec<f64>), _: u64) -> Vec<f64> {
            let n = acc.0.max(1) as f64;
            vec![acc.1[0] / n, acc.1[1] / n]
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn accumulator_shapes_roundtrip(
            count in 0u64..u64::MAX,
            moments in proptest::collection::vec(-1e12f64..1e12, 0..8),
        ) {
            let acc = (count, moments);
            let enc = encode_to_bytes(&acc);
            prop_assert_eq!(decode_from::<(u64, Vec<f64>)>(enc), Some(acc));
        }

        #[test]
        fn encoded_partial_fold_is_order_independent(
            parts in proptest::collection::vec(
                (1u64..1000, proptest::collection::vec(-1e6f64..1e6, 2..3)),
                1..6,
            ),
            perm_seed in 0u64..1000,
        ) {
            let op = Moments;
            // Typed fold in listed order.
            let mut direct = op.init();
            for p in &parts {
                op.combine(&mut direct, p.clone());
            }
            // Fold through the codec boundary in a permuted (machine
            // arrival) order.
            let mut order: Vec<usize> = (0..parts.len()).collect();
            let mut x = perm_seed.wrapping_add(0x9E3779B9);
            for i in (1..order.len()).rev() {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                order.swap(i, (x % (i as u64 + 1)) as usize);
            }
            let mut wired = op.init();
            for &i in &order {
                let bytes = encode_to_bytes(&parts[i]);
                let decoded = decode_from::<(u64, Vec<f64>)>(bytes).expect("roundtrip");
                op.combine(&mut wired, decoded);
            }
            prop_assert_eq!(direct.0, wired.0);
            for (a, b) in direct.1.iter().zip(&wired.1) {
                prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
            }
        }

        /// End to end: the typed mean published by a distributed run equals
        /// the mean computed directly from the final graph data.
        #[test]
        fn distributed_typed_aggregate_matches_direct_computation(
            g in arb_graph(),
            machines in 1usize..4,
        ) {
            const MOMENTS: GlobalHandle<Vec<f64>> = GlobalHandle::new(3);
            let mut dist = g.clone();
            let out = GraphLab::on(&mut dist)
                .engine(EngineKind::Locking)
                .machines(machines)
                .sync(MOMENTS, Moments, SyncCadence::Final)
                .run(|_ctx: &mut graphlab::core::UpdateContext<'_, f64, f64>| {});
            let n = dist.num_vertices() as f64;
            let mean: f64 = dist.vertices().map(|v| *dist.vertex_data(v)).sum::<f64>() / n;
            let got = out.globals.get(MOMENTS).expect("published");
            prop_assert!((got[0] - mean).abs() < 1e-9, "mean {} vs {}", got[0], mean);
        }

        /// FnSync (the sum-shaped adapter) through the erased path equals a
        /// direct sum.
        #[test]
        fn fnsync_sum_matches_direct(g in arb_graph()) {
            const SUM: GlobalHandle<Vec<f64>> = GlobalHandle::new(0);
            let mut dist = g.clone();
            let out = GraphLab::on(&mut dist)
                .sync(SUM, FnSync::new(1, |_, d: &f64| vec![*d], |a, _| a), SyncCadence::Final)
                .run(|_ctx: &mut graphlab::core::UpdateContext<'_, f64, f64>| {});
            let direct: f64 = dist.vertices().map(|v| *dist.vertex_data(v)).sum();
            let got = out.globals.get(SUM).expect("published");
            prop_assert!((got[0] - direct).abs() < 1e-9);
        }
    }
}

/// ISSUE 5: chaos suite for the fault-injection fabric + checkpoint
/// recovery. Random seeded `FaultPlan`s (kill point as a fraction of the
/// fault-free run's traffic, victim, dead-window length, snapshot mode and
/// cadence) on small PageRank instances: every run either reconverges to
/// the fault-free ranks or fails with the clean "no complete checkpoint"
/// error — it never hangs, never panics, and never returns a wrong
/// fixpoint. Failing seeds shrink and reprint via proptest as usual.
mod recovery {
    use super::*;
    use graphlab::apps::pagerank::{exact_pagerank, init_ranks, l1_error, PageRank};
    use graphlab::core::{
        EngineKind, FaultPlan, FaultTrigger, GraphLab, RecoveryMode, SnapshotConfig, SnapshotMode,
    };
    use graphlab::workloads::web_graph;
    use std::time::Duration;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn killed_runs_converge_or_fail_cleanly(
            graph_seed in 0u64..1_000,
            plan_seed in 0u64..1_000,
            engine_pick in 0u8..2,
            victim in 1u16..3,
            kill_frac in 0.05f64..0.45,
            dead_window_ms in 5u64..40,
            snap_pick in 0u8..2,
            snap_every in 100u64..400,
        ) {
            let engine = if engine_pick == 0 { EngineKind::Locking } else { EngineKind::Chromatic };
            let mode =
                if snap_pick == 0 { SnapshotMode::Asynchronous } else { SnapshotMode::Synchronous };
            let base = web_graph(120, 3, graph_seed);
            let oracle = exact_pagerank(&base, 0.15, 200);
            let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };
            let snapshot = SnapshotConfig { mode, every_updates: snap_every, max_snapshots: 1_000 };

            // Fault-free arm: the reference ranks and the traffic volume
            // the kill point is scaled against.
            let mut clean = base.clone();
            init_ranks(&mut clean);
            let clean_out = GraphLab::on(&mut clean)
                .engine(engine)
                .machines(3)
                .snapshot(snapshot)
                .run(pr.clone());
            let clean_ranks: Vec<f64> = clean.vertices().map(|v| *clean.vertex_data(v)).collect();
            prop_assert!(l1_error(&clean_ranks, &oracle) < 1e-6);

            // Chaos arm: kill mid-run (the faulty run sends at least as
            // much as the clean one, so the trigger always fires), restart
            // after a short dead window.
            let kill_at = ((clean_out.metrics.total_messages as f64 * kill_frac) as u64).max(10);
            let mut chaos = base.clone();
            init_ranks(&mut chaos);
            let result = GraphLab::on(&mut chaos)
                .engine(engine)
                .machines(3)
                .snapshot(snapshot)
                .faults(FaultPlan::seeded(plan_seed).kill_and_restart(
                    victim,
                    FaultTrigger::Deliveries(kill_at),
                    FaultTrigger::Elapsed(Duration::from_millis(dead_window_ms)),
                ))
                .try_run(pr.clone());
            match result {
                Ok(out) => {
                    prop_assert!(
                        out.metrics.recoveries >= 1,
                        "kill at delivery {} of ~{} fired mid-run but no rollback happened",
                        kill_at, clean_out.metrics.total_messages
                    );
                    let ranks: Vec<f64> = chaos.vertices().map(|v| *chaos.vertex_data(v)).collect();
                    let l1 = l1_error(&ranks, &clean_ranks);
                    prop_assert!(
                        l1 < 1e-6,
                        "recovered run diverged from the fault-free ranks (L1 {l1})"
                    );
                }
                Err(reason) => {
                    // Legal only when the kill beat the first checkpoint.
                    prop_assert!(
                        reason.contains("no complete checkpoint"),
                        "unexpected failure: {reason}"
                    );
                }
            }
        }

        /// ISSUE 8: under [`RecoveryMode::Adopt`] a permanent kill (no
        /// restart ever) reconverges through atom adoption — never a
        /// rollback, never a failure — regardless of whether the kill
        /// beat the first checkpoint (adoption degrades to journal-only).
        #[test]
        fn permanent_kills_adopt_and_reconverge(
            graph_seed in 0u64..1_000,
            plan_seed in 0u64..1_000,
            engine_pick in 0u8..2,
            victim in 1u16..3,
            kill_frac in 0.05f64..0.45,
            snap_every in 100u64..400,
        ) {
            let engine = if engine_pick == 0 { EngineKind::Locking } else { EngineKind::Chromatic };
            let base = web_graph(120, 3, graph_seed);
            let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };
            let snapshot = SnapshotConfig {
                mode: SnapshotMode::Synchronous,
                every_updates: snap_every,
                max_snapshots: 1_000,
            };

            let mut clean = base.clone();
            init_ranks(&mut clean);
            let clean_out = GraphLab::on(&mut clean)
                .engine(engine)
                .machines(3)
                .snapshot(snapshot)
                .run(pr.clone());
            let clean_ranks: Vec<f64> = clean.vertices().map(|v| *clean.vertex_data(v)).collect();

            let kill_at = ((clean_out.metrics.total_messages as f64 * kill_frac) as u64).max(10);
            let mut chaos = base.clone();
            init_ranks(&mut chaos);
            let result = GraphLab::on(&mut chaos)
                .engine(engine)
                .machines(3)
                .snapshot(snapshot)
                .recovery(RecoveryMode::Adopt)
                .faults(
                    FaultPlan::seeded(plan_seed).kill(victim, FaultTrigger::Deliveries(kill_at)),
                )
                .try_run(pr.clone());
            prop_assert!(
                result.is_ok(),
                "adoption must never fail the run: {:?}", result.as_ref().err()
            );
            let out = result.unwrap();
            prop_assert!(
                out.metrics.adoptions >= 1,
                "kill at delivery {} of ~{} fired mid-run but no adoption happened",
                kill_at, clean_out.metrics.total_messages
            );
            prop_assert_eq!(out.metrics.recoveries, 0, "adoption is restart-free");
            let ranks: Vec<f64> = chaos.vertices().map(|v| *chaos.vertex_data(v)).collect();
            let l1 = l1_error(&ranks, &clean_ranks);
            prop_assert!(l1 < 1e-6, "adopted run diverged from the fault-free ranks (L1 {l1})");
        }

        /// ISSUE 8: a network partition that heals *within* the lease
        /// period must cause zero false-positive deaths — no adoptions,
        /// no rollbacks, same fixpoint — even with the fabric's oracle
        /// disabled (lease expiry is the only death detector).
        #[test]
        fn partitions_healing_within_lease_cause_no_deaths(
            graph_seed in 0u64..1_000,
            plan_seed in 0u64..1_000,
            engine_pick in 0u8..2,
            cut_member in 1u16..3,
            cut_at in 50u64..500,
            cut_ms in 5u64..40,
        ) {
            let engine = if engine_pick == 0 { EngineKind::Locking } else { EngineKind::Chromatic };
            let base = web_graph(120, 3, graph_seed);
            let oracle = exact_pagerank(&base, 0.15, 200);
            let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

            let mut g = base.clone();
            init_ranks(&mut g);
            let result = GraphLab::on(&mut g)
                .engine(engine)
                .machines(3)
                .recovery(RecoveryMode::Adopt)
                // Lease period 10–80× the stall: expiry would be a
                // detector false positive, not a real death.
                .lease(Duration::from_millis(400))
                .faults(
                    FaultPlan::seeded(plan_seed)
                        .partition(
                            &[cut_member],
                            FaultTrigger::Deliveries(cut_at),
                            FaultTrigger::Elapsed(Duration::from_millis(cut_ms)),
                        )
                        .without_oracle(),
                )
                .try_run(pr.clone());
            prop_assert!(
                result.is_ok(),
                "a healed partition must not fail the run: {:?}", result.as_ref().err()
            );
            let out = result.unwrap();
            prop_assert_eq!(out.metrics.adoptions, 0, "false-positive death adopted");
            prop_assert_eq!(out.metrics.recoveries, 0, "false-positive death rolled back");
            let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
            let l1 = l1_error(&ranks, &oracle);
            prop_assert!(l1 < 1e-6, "partitioned run diverged from the oracle (L1 {l1})");
        }
    }
}

/// ISSUE 10: replication-aware placement invariants. Placement runs
/// inside adoption plans, which must replay identically on every
/// survivor, so it has to be a deterministic pure function of the index
/// (byte-identical across calls), place every atom exactly once, and —
/// composed with the restart-free adoption path behind
/// `RecoveryMode::Adopt` — never leave an atom on a fenced machine.
mod placement_props {
    use super::*;
    use graphlab::atoms::PlacementStrategy;
    use graphlab::graph::AtomId;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn replication_aware_is_deterministic_and_total(
            g in arb_graph(),
            k in 1usize..10,
            machines in 1usize..9,
            seed in 0u64..1_000,
        ) {
            let p = VertexPartition::random_hash(g.num_vertices(), k, seed);
            let (_, index) = build_atoms(&g, &p, "t");
            let a = Placement::with_strategy(&index, machines, PlacementStrategy::ReplicationAware);
            let b = Placement::with_strategy(&index, machines, PlacementStrategy::ReplicationAware);
            prop_assert_eq!(
                encode_to_bytes(&a),
                encode_to_bytes(&b),
                "same index, same machine count: byte-identical assignment"
            );
            let mut covered = 0usize;
            for m in 0..machines {
                covered += a.atoms_of(MachineId::from(m)).len();
            }
            prop_assert_eq!(covered, index.num_atoms(), "every atom placed exactly once");
            let loads = a.loads(&index);
            prop_assert_eq!(
                loads.iter().sum::<u64>(),
                g.num_vertices() as u64,
                "every owned vertex accounted for"
            );
        }

        #[test]
        fn adoption_never_leaves_atoms_on_fenced_machines(
            g in arb_graph(),
            k in 1usize..10,
            machines in 2usize..9,
            seed in 0u64..1_000,
            dead_bits in 1u32..256,
        ) {
            let p = VertexPartition::random_hash(g.num_vertices(), k, seed);
            let (_, index) = build_atoms(&g, &p, "t");
            let placed =
                Placement::with_strategy(&index, machines, PlacementStrategy::ReplicationAware);
            let mut dead: Vec<bool> = (0..machines).map(|m| dead_bits >> m & 1 == 1).collect();
            if dead.iter().all(|&d| d) {
                dead[0] = false; // adoption needs a survivor
            }
            let q = placed.adopt(&index, &dead);
            for a in 0..index.num_atoms() {
                let atom = AtomId(a as u32);
                prop_assert!(
                    !dead[q.machine_of(atom).index()],
                    "atom {} left on fenced machine {}", a, q.machine_of(atom).0
                );
                if !dead[placed.machine_of(atom).index()] {
                    prop_assert_eq!(
                        q.machine_of(atom),
                        placed.machine_of(atom),
                        "survivor atoms stay put"
                    );
                }
            }
        }
    }
}
